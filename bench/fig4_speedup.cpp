// Figure 4 reproduction.
//
// Left plot: *architectural speedup* — execution cycles of each kernel on a
// single OR10N core vs. the same portable code on Cortex-M3/M4 cost models,
// everything at -O3-equivalent code generation. The paper's shape:
//   * integer kernels (matmul char/short, strassen): biggest gains, from
//     MAC + infra-word vectorization + HW loops + post-increment;
//   * fixed-point kernels (matmul fixed, svm*, cnn*): smaller gains — the
//     per-product rounding shift locks out MAC/dot-product units;
//   * hog: slight slowdown — 32-bit fixed point with SW-emulated 64-bit
//     needs the 32x32->64 multiply OR10N lacks.
//
// Right plot: parallel speedup on the cluster (1 -> 2 -> 4 cores) vs. the
// ideal 4x, including every real cost: runtime chunk computation, barriers,
// TCDM contention, Amdahl residue (DMA staging by core 0). The paper
// reports ~6% average OpenMP runtime overhead; we print the measured
// deviation from ideal per kernel.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Figure 4 (left): architectural speedup",
                      "cycles(Cortex-M) / cycles(1x OR10N), flat memory");
  std::unique_ptr<trace::CsvWriter> csv;
  if (const std::string path = trace::csv_path_from_args(argc, argv);
      !path.empty()) {
    csv = std::make_unique<trace::CsvWriter>(
        path, std::vector<std::string>{"kernel_idx", "arch_vs_m4",
                                       "arch_vs_m3", "par_x2", "par_x4"});
  }
  std::printf("%-16s %12s %12s %12s | %9s %9s\n", "Benchmark", "M4 cyc",
              "M3 cyc", "OR10N cyc", "vs M4", "vs M3");

  const std::vector<bench::KernelMeasurement> all =
      bench::measure_kernels(kernels::all_kernels());
  for (const auto& m : all) {
    std::printf("%-16s %12llu %12llu %12llu | %8.2fx %8.2fx\n",
                m.info.name.c_str(),
                static_cast<unsigned long long>(m.cycles_m4),
                static_cast<unsigned long long>(m.cycles_m3),
                static_cast<unsigned long long>(m.cycles_or10n_1),
                static_cast<double>(m.cycles_m4) /
                    static_cast<double>(m.cycles_or10n_1),
                static_cast<double>(m.cycles_m3) /
                    static_cast<double>(m.cycles_or10n_1));
  }
  std::printf(
      "\nShape check (paper): integer group largest, fixed-point group\n"
      "smaller (no multiply-shift-accumulate), hog at or below 1.0x.\n");

  bench::print_header("Figure 4 (right): parallel speedup on the cluster",
                      "1 -> 2 -> 4 OR10N cores vs. the ideal 4x");
  std::printf("%-16s %12s %12s %12s | %7s %7s %10s\n", "Benchmark", "1 core",
              "2 cores", "4 cores", "x2", "x4", "ovh vs 4x");
  double sum_overhead = 0;
  for (size_t ki = 0; ki < all.size(); ++ki) {
    const auto& m = all[ki];
    const double s2 = static_cast<double>(m.cycles_cluster_1) /
                      static_cast<double>(m.cycles_cluster_2);
    const double s4 = static_cast<double>(m.cycles_cluster_1) /
                      static_cast<double>(m.cycles_cluster_4);
    const double overhead = (4.0 - s4) / 4.0;
    sum_overhead += overhead;
    if (csv) {
      csv->row({static_cast<double>(ki),
                static_cast<double>(m.cycles_m4) /
                    static_cast<double>(m.cycles_or10n_1),
                static_cast<double>(m.cycles_m3) /
                    static_cast<double>(m.cycles_or10n_1),
                s2, s4})
          .or_throw();
    }
    std::printf("%-16s %12llu %12llu %12llu | %6.2fx %6.2fx %9.1f%%\n",
                m.info.name.c_str(),
                static_cast<unsigned long long>(m.cycles_cluster_1),
                static_cast<unsigned long long>(m.cycles_cluster_2),
                static_cast<unsigned long long>(m.cycles_cluster_4), s2, s4,
                overhead * 100.0);
  }
  std::printf(
      "\nAverage deviation from ideal 4x: %.1f%%  (paper: Amdahl residue\n"
      "plus ~6%% average OpenMP runtime overhead)\n",
      sum_overhead / static_cast<double>(all.size()) * 100.0);
  return 0;
}
