// Shared helpers for the reproduction benches: measurement wrappers around
// the kernel suite and small table-printing utilities. Every bench binary
// prints the rows/series of one paper table or figure, with the paper's
// published values alongside where the paper states them.
//
// Observability: every bench also accepts
//   --trace <file.json>   dump a Chrome/Perfetto trace-event timeline of
//                         each offload session the bench runs
//   --trace-cluster       include the cycle-accurate cluster detail tracks
//   --trace-limit <N>     cap the in-memory event trace at N events (ring
//                         buffer; oldest closed events are dropped and
//                         counted)
//   --profile             print the "top phases by time" report + metrics
//   --profile-out <file>  write per-pc cycle attribution profiles (JSON)
//                         of each kernel's 4-core cluster run
//   --metrics-json <file> write the metrics registry as deterministic JSON
//   --faults=<spec>       run every offload session under deterministic
//                         link fault injection with the robust protocol
//                         (spec keys: seed, flip, drop, dup, nak, burst,
//                         stuck — see link/fault_injector.hpp)
// Declaring `bench::Observability obs(argc, argv);` first thing in main()
// is the only per-bench code; sessions built through
// make_prototype_session() attach automatically.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/pool.hpp"
#include "host/mcu.hpp"
#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"
#include "link/fault_injector.hpp"
#include "link/spi_link.hpp"
#include "power/pulp_power.hpp"
#include "profile/profile.hpp"
#include "profile/report.hpp"
#include "runtime/offload.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"

namespace ulp::bench {

inline constexpr u64 kSeed = 1;

/// Per-process trace/metrics collector behind `--trace` / `--profile`.
/// Construct one at the top of main(); it parses the flags, hands sinks to
/// every offload session the bench creates, and on destruction writes the
/// trace file and/or prints the profile report.
class Observability {
 public:
  Observability(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        trace_path_ = argv[i + 1];
      } else if (std::strcmp(argv[i], "--trace-cluster") == 0) {
        trace_cluster_ = true;
      } else if (std::strcmp(argv[i], "--profile") == 0) {
        profile_ = true;
      } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
        profile_out_ = argv[i + 1];
      } else if (std::strcmp(argv[i], "--metrics-json") == 0 &&
                 i + 1 < argc) {
        metrics_path_ = argv[i + 1];
      } else if (std::strcmp(argv[i], "--trace-limit") == 0 && i + 1 < argc) {
        const unsigned long long v = std::strtoull(argv[i + 1], nullptr, 0);
        trace_limit_ = v > 0 && v < 16 ? 16 : static_cast<size_t>(v);
      } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
        link::FaultConfig cfg;
        const Status s = link::FaultInjector::parse(argv[i] + 9, &cfg);
        if (s.ok()) {
          injector_ = std::make_unique<link::FaultInjector>(cfg);
        } else {
          std::fprintf(stderr, "ignoring bad --faults spec: %s\n",
                       s.message().c_str());
        }
      }
    }
    if (trace_limit_ > 0) trace_.set_event_limit(trace_limit_);
    if (enabled() || injector_ != nullptr || !profile_out_.empty()) {
      active_ = this;
    }
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  ~Observability() {
    if (active_ == this) active_ = nullptr;
    if (!trace_path_.empty()) {
      const Status s = trace::write_chrome_trace_file(trace_, trace_path_);
      if (s.ok()) {
        std::printf("\ntrace written to %s (load in ui.perfetto.dev)\n",
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     s.message().c_str());
      }
    }
    if (trace_.dropped_events() > 0) {
      std::printf("trace ring buffer dropped %llu oldest events "
                  "(--trace-limit %zu)\n",
                  static_cast<unsigned long long>(trace_.dropped_events()),
                  trace_limit_);
    }
    if (profile_) {
      std::printf("\n%s", trace::profile_report(trace_, &metrics_).c_str());
    }
    if (!metrics_path_.empty()) {
      const Status s = trace::write_metrics_json_file(metrics_, metrics_path_);
      if (s.ok()) {
        std::printf("metrics written to %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics export failed: %s\n",
                     s.message().c_str());
      }
    }
    if (!profile_out_.empty()) write_profiles();
  }

  /// The active collector of this process, or null when neither flag was
  /// given (tracing then costs the hot paths a single null check).
  [[nodiscard]] static Observability* active() { return active_; }

  [[nodiscard]] bool enabled() const {
    return !trace_path_.empty() || profile_ || !metrics_path_.empty();
  }
  [[nodiscard]] bool trace_cluster() const { return trace_cluster_; }
  /// A per-label attribution profiler when --profile-out was given, else
  /// null. Labels key the output JSON (kernel names for the benches).
  [[nodiscard]] profile::ClusterProfiler* cluster_profiler(
      const std::string& label) {
    return profile_out_.empty() ? nullptr : &book_.cluster(label);
  }
  [[nodiscard]] trace::Sinks sinks() {
    return {trace_path_.empty() && !profile_ ? nullptr : &trace_, &metrics_};
  }
  [[nodiscard]] trace::EventTrace& trace() { return trace_; }
  [[nodiscard]] trace::MetricsRegistry& metrics() { return metrics_; }
  /// Fold a finished run's block-cache totals into the metrics registry
  /// (pushed in bulk after the run, not sampled from the traced timeline:
  /// the per-cycle reference oracle has no cache, so sampling would make
  /// traced exports stepping-mode-dependent).
  void add_block_cache(const core::BlockCacheStats& bc) {
    metrics_.counter("blockcache.hits").add(bc.hits);
    metrics_.counter("blockcache.decodes").add(bc.decodes);
    metrics_.counter("blockcache.flushes").add(bc.flushes);
    metrics_.counter("blockcache.chained").add(bc.chained);
    metrics_.counter("blockcache.dmap_fallbacks").add(bc.dmap_fallbacks);
  }
  /// Null unless --faults was given. One injector per process: faults
  /// accumulate deterministically across every session of the bench.
  [[nodiscard]] link::FaultInjector* fault_injector() {
    return injector_.get();
  }

 private:
  static inline Observability* active_ = nullptr;

  void write_profiles() {
    std::ofstream out(profile_out_);
    if (!out.good()) {
      std::fprintf(stderr, "cannot open profile file: %s\n",
                   profile_out_.c_str());
      return;
    }
    out << "{\n  \"profiles\": {\n";
    const auto& books = book_.clusters();
    for (auto it = books.begin(); it != books.end(); ++it) {
      if (it != books.begin()) out << ",\n";
      out << "    \"" << trace::json_escape(it->first)
          << "\": " << profile::to_json(it->second->data());
    }
    out << (books.empty() ? "" : "\n") << "  }\n}\n";
    out.flush();
    if (out.good()) {
      std::printf("profiles written to %s\n", profile_out_.c_str());
    } else {
      std::fprintf(stderr, "profile write failed: %s\n",
                   profile_out_.c_str());
    }
  }

  trace::EventTrace trace_;
  trace::MetricsRegistry metrics_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string profile_out_;
  profile::ProfileBook book_;
  size_t trace_limit_ = 0;
  std::unique_ptr<link::FaultInjector> injector_;
  bool trace_cluster_ = false;
  bool profile_ = false;
};

/// Cycle counts of one kernel on every platform the figures need.
struct KernelMeasurement {
  kernels::KernelInfo info;
  u64 risc_ops = 0;
  u64 cycles_m4 = 0;
  u64 cycles_m3 = 0;
  u64 cycles_or10n_1 = 0;  ///< Single OR10N core, flat memory.
  u64 cycles_cluster_1 = 0;
  u64 cycles_cluster_2 = 0;
  u64 cycles_cluster_4 = 0;
  cluster::ClusterStats stats_cluster_4;
  size_t input_bytes = 0;
  size_t output_bytes = 0;
  size_t binary_bytes = 0;
};

inline KernelMeasurement measure_kernel(const kernels::KernelInfo& info) {
  using kernels::Target;
  KernelMeasurement m;
  m.info = info;
  m.risc_ops = kernels::measure_risc_ops(info, kSeed);

  const auto m4 = core::cortex_m4_config();
  const auto m3 = core::cortex_m3_config();
  const auto oc = core::or10n_config();

  auto flat = [&](const core::CoreConfig& cfg) {
    const auto kc = info.factory(cfg.features, 1, Target::kFlat, kSeed);
    return kernels::run_on_flat(kc, cfg).cycles;
  };
  m.cycles_m4 = flat(m4);
  m.cycles_m3 = flat(m3);
  m.cycles_or10n_1 = flat(oc);

  for (u32 nc : {1u, 2u, 4u}) {
    const auto kc = info.factory(oc.features, nc, Target::kCluster, kSeed);
    // With --trace/--profile/--profile-out active, the 4-core
    // (figure-defining) run of each kernel records its cluster timeline
    // and/or attribution profile.
    trace::Sinks sinks;
    profile::ClusterProfiler* prof = nullptr;
    if (Observability* obs = Observability::active(); obs && nc == 4) {
      sinks = obs->sinks();
      prof = obs->cluster_profiler(info.name);
    }
    const auto run = kernels::run_on_cluster(kc, oc, nc, sinks,
                                             info.name + ".cluster", prof);
    if (nc == 1) m.cycles_cluster_1 = run.cycles;
    if (nc == 2) m.cycles_cluster_2 = run.cycles;
    if (nc == 4) {
      m.cycles_cluster_4 = run.cycles;
      m.stats_cluster_4 = run.stats;
      m.input_bytes = kc.input.size();
      m.output_bytes = kc.output_bytes;
      m.binary_bytes = kc.binary_bytes();
      if (Observability* obs = Observability::active()) {
        obs->add_block_cache(run.stats.block_cache);
      }
    }
  }
  return m;
}

/// Measures a set of kernels concurrently on a batch::Pool, one task per
/// kernel, each writing its own pre-assigned slot — results come back in
/// input order regardless of scheduling. Falls back to serial, in-order
/// measurement whenever the Observability collector is active: the trace
/// and fault-injection sinks are per-process and their event order is part
/// of the output.
inline std::vector<KernelMeasurement> measure_kernels(
    const std::vector<kernels::KernelInfo>& infos) {
  std::vector<KernelMeasurement> all(infos.size());
  const u32 workers = Observability::active() != nullptr
                          ? 0
                          : std::thread::hardware_concurrency();
  batch::Pool pool(workers);
  for (size_t i = 0; i < infos.size(); ++i) {
    pool.submit([&all, &infos, i] { all[i] = measure_kernel(infos[i]); });
  }
  pool.wait_idle();
  return all;
}

inline void print_header(const char* title, const char* what) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n%s\n", title, what);
  std::printf("================================================================================\n");
}

/// An offload session configured like the prototype: L476 host, QSPI link.
/// When `--trace`/`--profile` is active, the session records its offload
/// phases onto a track named after the MCU clock (plus cluster detail with
/// `--trace-cluster`).
inline runtime::OffloadSession make_prototype_session(double mcu_freq_hz) {
  const host::McuSpec& mcu = host::stm32l476();
  link::SpiLinkConfig lcfg;
  lcfg.lanes = mcu.spi_lanes;
  lcfg.max_freq_hz = mcu.spi_max_hz;
  runtime::OffloadSession session(mcu, mcu_freq_hz, link::SpiLink(lcfg));
  if (Observability* obs = Observability::active()) {
    char name[64];
    std::snprintf(name, sizeof name, "offload@%.0fMHz", mcu_freq_hz / 1e6);
    if (obs->enabled()) {
      session.attach_trace(obs->sinks(), name, obs->trace_cluster());
    }
    if (auto* prof = obs->cluster_profiler(name)) {
      session.attach_profile(prof);
    }
    if (obs->fault_injector() != nullptr) {
      session.attach_faults(obs->fault_injector());
    }
  }
  return session;
}

}  // namespace ulp::bench
