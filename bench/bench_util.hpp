// Shared helpers for the reproduction benches: measurement wrappers around
// the kernel suite and small table-printing utilities. Every bench binary
// prints the rows/series of one paper table or figure, with the paper's
// published values alongside where the paper states them.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "host/mcu.hpp"
#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"
#include "link/spi_link.hpp"
#include "power/pulp_power.hpp"
#include "runtime/offload.hpp"

namespace ulp::bench {

inline constexpr u64 kSeed = 1;

/// Cycle counts of one kernel on every platform the figures need.
struct KernelMeasurement {
  kernels::KernelInfo info;
  u64 risc_ops = 0;
  u64 cycles_m4 = 0;
  u64 cycles_m3 = 0;
  u64 cycles_or10n_1 = 0;  ///< Single OR10N core, flat memory.
  u64 cycles_cluster_1 = 0;
  u64 cycles_cluster_2 = 0;
  u64 cycles_cluster_4 = 0;
  cluster::ClusterStats stats_cluster_4;
  size_t input_bytes = 0;
  size_t output_bytes = 0;
  size_t binary_bytes = 0;
};

inline KernelMeasurement measure_kernel(const kernels::KernelInfo& info) {
  using kernels::Target;
  KernelMeasurement m;
  m.info = info;
  m.risc_ops = kernels::measure_risc_ops(info, kSeed);

  const auto m4 = core::cortex_m4_config();
  const auto m3 = core::cortex_m3_config();
  const auto oc = core::or10n_config();

  auto flat = [&](const core::CoreConfig& cfg) {
    const auto kc = info.factory(cfg.features, 1, Target::kFlat, kSeed);
    return kernels::run_on_flat(kc, cfg).cycles;
  };
  m.cycles_m4 = flat(m4);
  m.cycles_m3 = flat(m3);
  m.cycles_or10n_1 = flat(oc);

  for (u32 nc : {1u, 2u, 4u}) {
    const auto kc = info.factory(oc.features, nc, Target::kCluster, kSeed);
    const auto run = kernels::run_on_cluster(kc, oc, nc);
    if (nc == 1) m.cycles_cluster_1 = run.cycles;
    if (nc == 2) m.cycles_cluster_2 = run.cycles;
    if (nc == 4) {
      m.cycles_cluster_4 = run.cycles;
      m.stats_cluster_4 = run.stats;
      m.input_bytes = kc.input.size();
      m.output_bytes = kc.output_bytes;
      m.binary_bytes = kc.binary_bytes();
    }
  }
  return m;
}

inline void print_header(const char* title, const char* what) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n%s\n", title, what);
  std::printf("================================================================================\n");
}

/// An offload session configured like the prototype: L476 host, QSPI link.
inline runtime::OffloadSession make_prototype_session(double mcu_freq_hz) {
  const host::McuSpec& mcu = host::stm32l476();
  link::SpiLinkConfig lcfg;
  lcfg.lanes = mcu.spi_lanes;
  lcfg.max_freq_hz = mcu.spi_max_hz;
  return runtime::OffloadSession(mcu, mcu_freq_hz, link::SpiLink(lcfg));
}

}  // namespace ulp::bench
