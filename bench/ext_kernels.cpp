// Extension-kernel characterisation (beyond the paper's Table I/Figure 4):
// the intro's remaining application classes — voice front-end (FFT) and
// biomedical DSP (FIR bank) — measured with the same methodology as the
// Table I kernels.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Extension kernels: FFT (voice) and FIR bank (biomed)",
                      "same methodology as Figure 4; not part of Table I");

  std::printf("%-16s %10s %10s %10s | %7s %7s | %7s %7s\n", "Kernel",
              "RISCops", "M4 cyc", "OR10N", "archM4", "archM3", "par x4",
              "ops/cyc");
  for (const auto& m : bench::measure_kernels(kernels::extension_kernels())) {
    std::printf("%-16s %10llu %10llu %10llu | %6.2fx %6.2fx | %6.2fx %7.2f\n",
                m.info.name.c_str(),
                static_cast<unsigned long long>(m.risc_ops),
                static_cast<unsigned long long>(m.cycles_m4),
                static_cast<unsigned long long>(m.cycles_or10n_1),
                static_cast<double>(m.cycles_m4) /
                    static_cast<double>(m.cycles_or10n_1),
                static_cast<double>(m.cycles_m3) /
                    static_cast<double>(m.cycles_or10n_1),
                static_cast<double>(m.cycles_cluster_1) /
                    static_cast<double>(m.cycles_cluster_4),
                static_cast<double>(m.risc_ops) /
                    static_cast<double>(m.cycles_cluster_4));
  }
  std::printf(
      "\nReading: both are fixed-point kernels (per-product shifts), so —\n"
      "exactly like the paper's fixed-point group — their architectural\n"
      "speedup comes from hardware loops and post-increment only. The FFT's\n"
      "nine barrier-separated stages cost it a few points of parallel\n"
      "efficiency relative to the embarrassingly parallel FIR bank.\n");
  return 0;
}
