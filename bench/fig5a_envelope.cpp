// Figure 5a reproduction: speedup achievable within a total 10 mW power
// envelope, without offload costs.
//
// Baseline: the STM32-L476 at 32 MHz (which consumes essentially the whole
// envelope on its own). For each lower MCU frequency, the freed-up power
// (10 mW - P_mcu - P_link_idle) goes to the accelerator, which runs at the
// fastest operating point that fits, using the kernel's *measured* activity
// factors. Bars are annotated with RISC ops/cycle as in the paper.
//
// MCU-only bars (f/32 scaling) are also printed, including the beyond-
// envelope 48/80 MHz points the paper shows for reference.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  constexpr double kBudget = mw(10);
  const host::McuSpec& mcu = host::stm32l476();
  power::PulpPowerModel pm;
  link::SpiLink link(link::SpiLinkConfig{.lanes = mcu.spi_lanes,
                                         .max_freq_hz = mcu.spi_max_hz});

  bench::print_header(
      "Figure 5a: speedup within a 10 mW envelope (no offload cost)",
      "baseline: STM32-L476 @ 32 MHz; PULP at the best op point that fits");

  std::printf("\n-- MCU-only scaling (annotated with RISC ops/cycle) --\n");
  std::printf("%-16s ops/cyc |", "Benchmark");
  for (double f : mcu.op_freqs_hz) std::printf(" %6.0fM", f / 1e6);
  std::printf("\n");

  const std::vector<bench::KernelMeasurement> all =
      bench::measure_kernels(kernels::all_kernels());
  for (const auto& m : all) {
    std::printf("%-16s %7.2f |", m.info.name.c_str(),
                static_cast<double>(m.risc_ops) /
                    static_cast<double>(m.cycles_m4));
    for (double f : mcu.op_freqs_hz) {
      const bool over = mcu.active_power_w(f) > kBudget;
      std::printf(" %5.2f%c", f / mhz(32), over ? '*' : ' ');
    }
    std::printf("\n");
  }
  std::printf("(* = exceeds the 10 mW envelope; shown for reference)\n");

  std::printf("\n-- Heterogeneous: PULP speedup vs L476@32MHz --\n");
  std::printf("%-16s ops/cyc |", "Benchmark");
  std::vector<double> sweep;
  for (double f : mcu.op_freqs_hz) {
    if (f <= mhz(32)) sweep.push_back(f);
  }
  for (double f : sweep) std::printf("   %4.0fMHz", f / 1e6);
  std::printf("\n");

  double best_speedup = 0;
  std::string best_kernel;
  double worst_best = 1e30;  // best point of the worst kernel
  for (const auto& m : all) {
    const auto chi = power::ActivityFactors::from_stats(m.stats_cluster_4);
    std::printf("%-16s %7.2f |", m.info.name.c_str(),
                static_cast<double>(m.risc_ops) /
                    static_cast<double>(m.cycles_cluster_4));
    const double t_ref =
        static_cast<double>(m.cycles_m4) / mhz(32);  // L476 @ 32 MHz
    double kernel_best = 0;
    for (double f_mcu : sweep) {
      const double residual =
          kBudget - mcu.active_power_w(f_mcu) - link.idle_power_w();
      const auto op = pm.max_performance_point(residual, chi);
      if (!op) {
        std::printf("   %7s", "--");
        continue;
      }
      const double t_pulp =
          static_cast<double>(m.cycles_cluster_4) / op->freq_hz;
      const double speedup = t_ref / t_pulp;
      kernel_best = std::max(kernel_best, speedup);
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_kernel = m.info.name;
      }
      std::printf("   %6.1fx", speedup);
    }
    worst_best = std::min(worst_best, kernel_best);
    std::printf("\n");
  }
  std::printf(
      "\n-- Anchors --\n"
      "Best case:  %-14s %.0fx   (paper: strassen, up to 60x)\n"
      "Worst case: %.0fx                 (paper: hog, ~20x)\n"
      "Shape: speedup grows as the MCU slows and frees envelope power;\n"
      "integer kernels gain most, hog least — matching the paper. Absolute\n"
      "factors are lower because this simulator's per-cycle throughput is\n"
      "higher than the original OR10N's (see EXPERIMENTS.md).\n",
      best_kernel.c_str(), best_speedup, worst_best);
  return 0;
}
