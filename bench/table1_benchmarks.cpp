// Table I reproduction: summary of the benchmark kernels.
//
// Prints, per kernel: field, input size, output size, binary size and
// "RISC ops" (instructions retired on the plain-RISC baseline core), with
// the paper's published values alongside. Sizes match the paper where the
// workload is fully specified (matmul family, cnn input/output, hog input);
// deltas are called out in EXPERIMENTS.md.
#include <cstdio>

#include "bench_util.hpp"

namespace {

struct PaperRow {
  double input_kb, output_kb, binary_kb, risc_mops;
};

const std::map<std::string, PaperRow>& paper_rows() {
  static const std::map<std::string, PaperRow> rows = {
      {"matmul", {8, 4, 11, 2.4}},
      {"matmul (short)", {16, 8, 11, 2.4}},
      {"matmul (fixed)", {16, 8, 13, 2.7}},
      {"strassen", {8, 4, 6.7, 2.3}},
      {"svm (linear)", {6.9, 1.6, 11.4, 0.65}},
      {"svm (poly)", {6.9, 1.6, 11.5, 0.684}},
      {"svm (RBF)", {6.9, 1.6, 11.6, 0.781}},
      {"cnn", {2, 0.04, 48.1, 3.3}},
      {"cnn (approx)", {2, 0.04, 48.1, 2.6}},
      {"hog", {16, 36, 31.2, 31}},
  };
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header(
      "Table I: Summary of the benchmark kernels",
      "measured on this reproduction vs. the paper's published values");

  std::printf(
      "%-16s %-18s | %8s %8s %8s %9s | %8s %8s %8s %9s\n",
      "Benchmark", "Field", "in kB", "out kB", "bin kB", "RISCops",
      "p:in", "p:out", "p:bin", "p:ops");
  std::printf(
      "%-16s %-18s | %38s | %36s\n", "", "", "measured", "paper");
  for (const auto& m : bench::measure_kernels(kernels::all_kernels())) {
    const PaperRow& p = paper_rows().at(m.info.name);
    std::printf(
        "%-16s %-18s | %8.1f %8.2f %8.1f %8.2fM | %8.1f %8.2f %8.1f %8.2fM\n",
        m.info.name.c_str(), m.info.field.c_str(),
        static_cast<double>(m.input_bytes) / 1024.0,
        static_cast<double>(m.output_bytes) / 1024.0,
        static_cast<double>(m.binary_bytes) / 1024.0,
        static_cast<double>(m.risc_ops) / 1e6, p.input_kb, p.output_kb,
        p.binary_kb, p.risc_mops);
  }
  std::printf(
      "\nNotes: RISC ops are retired instructions on the baseline core\n"
      "(all OR10N enhancements deactivated), per the paper's footnote 1.\n"
      "Binary sizes are serialised image bytes (code + weights/LUT segments);\n"
      "the paper's binaries also carry libc/runtime overhead of the GNU\n"
      "toolchain, ours carry none.\n");
  return 0;
}
