// Ablation: double buffering inside the cluster (simulated, not analytic).
//
// The streamed tiled matmul runs twice — eager (wait for every transfer)
// and ping-pong double-buffered — on the same data. The cycle difference
// is the measured overlap win; Figure 5b's rightmost panel models the same
// effect at the host-link level.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header(
      "Ablation: DMA double buffering in the cluster",
      "tiled matmul, 8 tiles streamed through ping-pong TCDM buffers");

  const auto cfg = core::or10n_config();
  std::printf("%-8s %14s %14s %10s %14s\n", "cores", "sequential", "dbuf",
              "saved", "dma busy (db)");
  for (u32 nc : {1u, 2u, 4u}) {
    const auto seq = kernels::make_matmul_tiled(cfg.features, nc, 1, false);
    const auto db = kernels::make_matmul_tiled(cfg.features, nc, 1, true);
    const auto rs = kernels::run_on_cluster(seq, cfg, nc);
    const auto rd = kernels::run_on_cluster(db, cfg, nc);
    if (!rs.matches(seq) || !rd.matches(db)) {
      std::printf("OUTPUT MISMATCH\n");
      return 1;
    }
    std::printf("%-8u %14llu %14llu %9.1f%% %14llu\n", nc,
                static_cast<unsigned long long>(rs.cycles),
                static_cast<unsigned long long>(rd.cycles),
                100.0 * (1.0 - static_cast<double>(rd.cycles) /
                                   static_cast<double>(rs.cycles)),
                static_cast<unsigned long long>(rd.stats.dma.busy_cycles));
  }
  std::printf(
      "\nReading: the win equals the transfer time that hides behind\n"
      "compute. With more cores the compute per tile shrinks, so the same\n"
      "transfers are a larger fraction and the relative saving grows.\n");
  return 0;
}
