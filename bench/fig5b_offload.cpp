// Figure 5b reproduction: efficiency w.r.t. the ideal speedup when scaling
// the number of benchmark iterations per offload.
//
// One code offload (binary over SPI) is followed by n iterations, each with
// its input/output data exchange. The SPI clock is tied to the MCU clock
// (f_spi = f_mcu/2, QSPI x4 lanes), so at low MCU frequencies the link
// starves the accelerator and efficiency plateaus below 1 — the paper's
// central observation. At the faster MCU settings (16/26 MHz) full
// efficiency is reached "after as few as 32 iterations". The rightmost
// paper plot — double buffering overlapping transfers with compute — is the
// third panel.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header(
      "Figure 5b: offload efficiency vs iterations per offload",
      "matmul; PULP at the 0.5 V envelope point; QSPI tied to the MCU clock");

  const auto cfg = core::or10n_config();
  power::PulpPowerModel pm;
  const power::OperatingPoint op{0.5, pm.fmax_hz(0.5)};
  const std::vector<double> mcu_freqs = {mhz(2), mhz(4), mhz(8), mhz(16),
                                         mhz(26)};
  const std::vector<u32> iterations = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  for (const char* kernel_name : {"matmul", "cnn"}) {
    const kernels::KernelInfo* info = nullptr;
    for (const auto& k : kernels::all_kernels()) {
      if (k.name == kernel_name) info = &k;
    }
    const auto kc = info->factory(cfg.features, 4, kernels::Target::kCluster,
                                  bench::kSeed);
    for (const bool double_buffered : {false, true}) {
      std::printf("\n-- %s, %s --\n", kernel_name,
                  double_buffered
                      ? "double-buffered (transfers overlap compute)"
                      : "sequential offload");
      std::printf("%-9s", "f_mcu");
      for (u32 n : iterations) std::printf(" %6u", n);
      std::printf("  plateau\n");
      for (double f : mcu_freqs) {
        auto session = bench::make_prototype_session(f);
        const auto outcome = session.run(kc.offload_request(), op);
        std::printf("%6.0fMHz", f / 1e6);
        for (u32 n : iterations) {
          std::printf(" %6.3f",
                      outcome.timing.efficiency(n, double_buffered));
        }
        // Asymptotic efficiency (binary fully amortised).
        const double t_xfer = outcome.timing.t_in_s + outcome.timing.t_out_s;
        const double tc = outcome.timing.t_compute_s;
        const double plateau =
            double_buffered ? tc / std::max(tc, t_xfer) : tc / (tc + t_xfer);
        std::printf("  %6.3f\n", plateau);
      }
    }
  }

  std::printf(
      "\nShape check (paper): the 16/26 MHz rows approach full efficiency\n"
      "within ~32 iterations; the low-frequency rows plateau early because\n"
      "the MCU-derived SPI clock bounds the data exchange. Double buffering\n"
      "recovers efficiency wherever compute time covers the transfers.\n");
  return 0;
}
