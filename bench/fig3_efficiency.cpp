// Figure 3 reproduction: energy efficiency (GOPS/W) vs power on matmul,
// PULP across its V_DD range against the commercial MCU catalog.
//
// GOPS counts "RISC operations" (the baseline-core work metric) per second,
// exactly like the paper. For PULP the activity factors come from the
// simulated 4-core run; for each MCU the kernel runs on its Cortex-M (or
// 16-bit) cost model and power follows the datasheet µA/MHz idiom.
//
// Paper anchors: PULP peaks at ~304 GOPS/W around 1.48 mW; every MCU stays
// below ~5 GOPS/W except the subthreshold Ambiq Apollo at ~10 GOPS/W.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Figure 3: energy efficiency on matmul",
                      "PULP V_DD sweep vs. commercial MCU operating points");
  // Optional CSV dump for plotting: --csv fig3.csv
  std::unique_ptr<trace::CsvWriter> csv;
  if (const std::string path = trace::csv_path_from_args(argc, argv);
      !path.empty()) {
    csv = std::make_unique<trace::CsvWriter>(
        path, std::vector<std::string>{"is_pulp", "freq_mhz", "power_mw",
                                       "gops", "gops_per_w"});
  }

  const auto& matmul = kernels::all_kernels()[0];
  const auto m = bench::measure_kernel(matmul);
  const auto chi = power::ActivityFactors::from_stats(m.stats_cluster_4);
  power::PulpPowerModel pm;

  std::printf("\n-- PULP (4 cores, matmul activity: chi_run=%.2f mem=%.2f)\n",
              chi.cores_run, chi.mem);
  std::printf("%6s %10s %10s %10s %12s\n", "V_DD", "f [MHz]", "P [mW]",
              "GOPS", "GOPS/W");
  double peak_eff = 0;
  double peak_power = 0;
  for (double vdd = 0.5; vdd <= 1.0 + 1e-9; vdd += 0.05) {
    const power::OperatingPoint op{vdd, pm.fmax_hz(vdd)};
    const double watts = pm.total_w(chi, op);
    const double gops = static_cast<double>(m.risc_ops) /
                        static_cast<double>(m.cycles_cluster_4) * op.freq_hz /
                        1e9;
    const double eff = gops / watts;
    if (eff > peak_eff) {
      peak_eff = eff;
      peak_power = watts;
    }
    std::printf("%6.2f %10.1f %10.3f %10.3f %12.1f\n", vdd, op.freq_hz / 1e6,
                watts * 1e3, gops, eff);
    if (csv) csv->row({1, op.freq_hz / 1e6, watts * 1e3, gops, eff}).or_throw();
  }

  std::printf("\n-- Commercial MCUs (datasheet operating points)\n");
  std::printf("%-14s %10s %10s %10s %12s\n", "MCU", "f [MHz]", "P [mW]",
              "GOPS", "GOPS/W");
  double best_mcu_eff = 0;
  std::string best_mcu;
  for (const auto& mcu : host::mcu_catalog()) {
    const auto cfg = mcu.core_config();
    const auto kc =
        matmul.factory(cfg.features, 1, kernels::Target::kFlat, bench::kSeed);
    const u64 cycles = kernels::run_on_flat(kc, cfg).cycles;
    for (double f : mcu.op_freqs_hz) {
      const double watts = mcu.active_power_w(f);
      const double gops = static_cast<double>(m.risc_ops) /
                          static_cast<double>(cycles) * f / 1e9;
      const double eff = gops / watts;
      if (eff > best_mcu_eff) {
        best_mcu_eff = eff;
        best_mcu = mcu.name;
      }
      std::printf("%-14s %10.1f %10.3f %10.4f %12.2f\n", mcu.name.c_str(),
                  f / 1e6, watts * 1e3, gops, eff);
      if (csv) csv->row({0, f / 1e6, watts * 1e3, gops, eff}).or_throw();
    }
  }

  std::printf(
      "\n-- Anchors --\n"
      "PULP peak:   %.1f GOPS/W at %.2f mW   (paper: 304 GOPS/W at 1.48 mW)\n"
      "Best MCU:    %-13s %.1f GOPS/W      (paper: Apollo ~10, others < 5)\n"
      "Gap:         %.0fx                     (paper: ~1.5 orders of magnitude)\n",
      peak_eff, peak_power * 1e3, best_mcu.c_str(), best_mcu_eff,
      peak_eff / best_mcu_eff);
  return 0;
}
