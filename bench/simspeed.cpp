// Simulator throughput micro-benchmarks (google-benchmark).
//
// Not a paper figure: this measures the reproduction itself — simulated
// MIPS of the single-core ISS and the 4-core cluster, and the codegen /
// serialisation paths — so regressions in the simulator's own performance
// are visible.
//
// The quiescence fast-forward scheduler (default) vs the per-cycle
// reference loop is an environment switch: run once normally and once with
// ULP_REFERENCE_STEPPING=1 to get after/before numbers for the same binary.
// `scripts/bench_simspeed.sh` does both and writes BENCH_simspeed.json.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "codegen/builder.hpp"
#include "common/config.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace {

using namespace ulp;

void BM_SingleCoreIss(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(cfg.features, 1,
                                            kernels::Target::kFlat, 1);
  u64 instrs = 0;
  for (auto _ : state) {
    const auto out = kernels::run_on_flat(kc, cfg);
    instrs += out.stats.total_instrs();
    benchmark::DoNotOptimize(out.cycles);
  }
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleCoreIss)->Unit(benchmark::kMillisecond);

// Dense-compute half of the old BM_Cluster4Cores: the SPMD i8 matmul whose
// inner loops run block-cached from barrier to barrier — the headline
// workload for the multi-core block windows.
void BM_Cluster4CoresDense(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(cfg.features, 4,
                                            kernels::Target::kCluster, 1);
  u64 cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    const auto out = kernels::run_on_cluster(kc, cfg, 4);
    cycles += out.cycles;
    instrs += out.stats.total_instrs();
    benchmark::DoNotOptimize(out.cycles);
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Cluster4CoresDense)->Unit(benchmark::kMillisecond);

// Barrier-heavy half: the same four cores stream their own TCDM strips,
// but the work is diced into 16-word loads with a cluster barrier after
// every strip — windows stay short and the block-cached scheduler pays
// entry/exit and re-sync cost per strip instead of amortising it.
void BM_Cluster4CoresBarrierHeavy(benchmark::State& state) {
  codegen::Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.li(3, 1024);
  bld.emit(isa::Opcode::kMul, 3, 1, 3, 0);  // per-core TCDM strip
  bld.li(4, cluster::kTcdmBase);
  bld.emit(isa::Opcode::kAdd, 3, 3, 4, 0);
  bld.li(4, 400);
  bld.loop(4, 10, [&] {
    bld.emit(isa::Opcode::kAddi, 6, 3, 0, 0);
    bld.li(5, 16);
    bld.loop(5, 11, [&] {
      bld.emit(isa::Opcode::kLw, 7, 6, 0, 0);
      bld.emit(isa::Opcode::kAdd, 8, 8, 7, 0);
      bld.emit(isa::Opcode::kAddi, 6, 6, 0, 4);
    });
    bld.barrier();
  });
  bld.eoc();
  const auto prog = bld.finalize();
  u64 cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    cluster::Cluster cl;
    cl.load_program(prog);
    cycles += cl.run();
    instrs += cl.stats().total_instrs();
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Cluster4CoresBarrierHeavy)->Unit(benchmark::kMillisecond);

// Two-cluster co-simulation: one host dispatches the dense matmul to both
// clusters over the shared wire and retires them in order. Measures the
// scale-out scheduler with every cluster running multi-core block windows;
// the counter is summed cluster megacycles per wall-second.
void BM_TwoClusterCosim(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  std::vector<kernels::KernelCase> cases;
  for (u64 seed : {1, 2}) {
    cases.push_back(kernels::make_matmul_char(cfg.features, 4,
                                              kernels::Target::kCluster,
                                              seed));
  }
  const system::MultiSystemPackage pkg = system::package_multi_offload(cases);
  system::HeteroSystemParams params;
  params.num_clusters = 2;
  u64 cluster_cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    system::HeteroSystem sys(params);
    const auto res = system::run_multi_offload(sys, pkg);
    cluster_cycles += res.stats.cluster_cycles;
    for (u32 c = 0; c < 2; ++c) {
      instrs += sys.soc(c).cluster().stats().total_instrs();
    }
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cluster_cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TwoClusterCosim)->Unit(benchmark::kMillisecond);

// Sleep-heavy cluster workload: core 0 streams eight 16 KiB L2->TCDM DMA
// rounds sleeping on WFE between them, cores 1..3 sleep on a completion
// flag the whole time — the double-buffered-kernel idle pattern the
// quiescence fast-forward targets.
isa::Program make_sleep_heavy_program() {
  codegen::Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.li(10, cluster::kTcdmBase + 0x7000);  // completion flag
  const auto waiters = bld.make_label();
  bld.branch(isa::Opcode::kBne, 1, codegen::zero, waiters);
  // --- core 0: eight DMA rounds, WFE-waiting on each.
  bld.li(20, cluster::kL2Base);
  bld.li(21, cluster::kTcdmBase);
  bld.li(22, 16 * 1024);
  bld.li(4, 8);
  bld.loop(4, 11, [&] {
    bld.dma_start(25, 20, 21, 22);
    bld.dma_wait_wfe(25, 26);
  });
  bld.li(3, 1);
  bld.emit(isa::Opcode::kSw, 3, 10, 0, 0);
  bld.emit(isa::Opcode::kSev, 0, 0, 0, 0);
  bld.eoc();
  // --- cores 1..3: sleep until the flag is set.
  bld.bind(waiters);
  const auto wait = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(wait);
  bld.emit(isa::Opcode::kLw, 5, 10, 0, 0);
  bld.branch(isa::Opcode::kBne, 5, codegen::zero, done);
  bld.emit(isa::Opcode::kWfe);
  bld.branch(isa::Opcode::kBeq, codegen::zero, codegen::zero, wait);
  bld.bind(done);
  bld.halt();
  return bld.finalize();
}

void BM_ClusterSleepHeavy(benchmark::State& state) {
  const auto prog = make_sleep_heavy_program();
  u64 cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    cluster::Cluster cl;
    cl.load_program(prog);
    cycles += cl.run();
    instrs += cl.stats().total_instrs();
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSleepHeavy)->Unit(benchmark::kMillisecond);

// Barrier storm: every core wakes every few cycles, so quiescent windows
// are short. This is the fast-forward scheduler's documented worst case —
// it must still not be slower than the reference loop.
void BM_BarrierHeavy(benchmark::State& state) {
  codegen::Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.li(2, 7);
  bld.emit(isa::Opcode::kMul, 3, 1, 2, 0);
  bld.emit(isa::Opcode::kAddi, 3, 3, 0, 1);
  bld.li(4, 2000);
  bld.loop(4, 10, [&] {
    bld.loop(3, 11, [&] { bld.nop(); });
    bld.barrier();
  });
  bld.eoc();
  const auto prog = bld.finalize();
  u64 cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    cluster::Cluster cl;
    cl.load_program(prog);
    cycles += cl.run();
    instrs += cl.stats().total_instrs();
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BarrierHeavy)->Unit(benchmark::kMillisecond);

// Decode-pressure worst case for the basic-block translation cache: a
// straight-line footprint larger than the cache's record budget, looped a
// few times. Every pass overflows the cache, so the block-cached path pays
// a wholesale flush plus a full re-decode per pass on top of execution —
// this measures that decode overhead stays small rather than any speedup.
void BM_DecodeHeavy(benchmark::State& state) {
  codegen::Builder bld(core::or10n_config().features);
  constexpr u32 kStraightLine = 40 * 1024;  // records budget is 32 Ki
  bld.li(6, 4);  // passes
  const auto top = bld.make_label();
  bld.bind(top);
  for (u32 i = 0; i < kStraightLine; ++i) {
    bld.emit(isa::Opcode::kAddi, 5, 5, 0, 1);
  }
  bld.emit(isa::Opcode::kAddi, 6, 6, 0, -1);
  // The back-edge spans more than a branch immediate can reach (15-bit);
  // jal's 20-bit offset covers it.
  const auto done = bld.make_label();
  bld.branch(isa::Opcode::kBeq, 6, codegen::zero, done);
  bld.jal(0, top);
  bld.bind(done);
  bld.eoc();
  cluster::ClusterParams params;
  params.num_cores = 1;
  const auto prog = bld.finalize();
  u64 cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    cluster::Cluster cl(params);
    cl.load_program(prog);
    cycles += cl.run();
    instrs += cl.stats().total_instrs();
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeHeavy)->Unit(benchmark::kMillisecond);

// Offload guest for BM_FullSystemOffload: sensor-window streaming. Core 0
// pulls the 4 KiB input window from L2 into TCDM thirty-two times (one pass
// per filter stage), sleeping on WFE through every DMA burst, then reduces
// the window to a word-sum checksum; cores 1..3 halt immediately. The
// cluster therefore spends ~90% of its cycles clock-gated — the DMA-bound
// guest profile the quiescence fast-forward targets end to end.
kernels::KernelCase make_streaming_case() {
  using isa::Opcode;
  constexpr u32 kWindowBytes = 4 * 1024;
  constexpr u32 kPasses = 32;
  codegen::Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto work = bld.make_label();
  bld.branch(Opcode::kBeq, 1, codegen::zero, work);
  bld.halt();
  bld.bind(work);
  bld.li(20, kernels::kL2InputAddr);
  bld.li(21, cluster::kTcdmBase);
  bld.li(22, kWindowBytes);
  bld.li(4, kPasses);
  bld.loop(4, 11, [&] {
    bld.dma_start(25, 20, 21, 22);
    bld.dma_wait_wfe(25, 26);
  });
  bld.li(5, 0);  // running word-sum of the final window
  bld.li(6, cluster::kTcdmBase);
  bld.li(4, kWindowBytes / 4);
  bld.loop(4, 11, [&] {
    bld.emit(Opcode::kLw, 7, 6, 0, 0);
    bld.emit(Opcode::kAdd, 5, 5, 7);
    bld.emit(Opcode::kAddi, 6, 6, 0, 4);
  });
  bld.li(8, kernels::kL2OutputAddr);
  bld.emit(Opcode::kSw, 5, 8, 0, 0);
  bld.eoc();

  kernels::KernelCase kc;
  kc.name = "stream4k";
  kc.program = bld.finalize();
  kc.input.resize(kWindowBytes);
  for (u32 i = 0; i < kWindowBytes; ++i)
    kc.input[i] = static_cast<u8>(i * 37 + 11);
  kc.input_addr = kernels::kL2InputAddr;
  kc.output_bytes = 4;
  kc.output_addr = kernels::kL2OutputAddr;
  return kc;
}

// End-to-end offload at the asymmetric operating point (80 MHz MCU driving
// the 8 MHz near-threshold cluster): SPI shipping, fetch-enable, compute
// with the host asleep on EOC, result readback. Host-domain fast-forward
// collapses the 10 host cycles per cluster tick while the cluster itself
// bulk-advances through the guest's DMA sleeps; the counter is simulated
// *host* megacycles per wall-second.
void BM_FullSystemOffload(benchmark::State& state) {
  const system::FullSystemPackage pkg =
      system::package_offload(make_streaming_case());
  system::HeteroSystemParams params;
  params.mcu_freq_hz = mhz(80);
  params.pulp_freq_hz = mhz(8);
  u64 host_cycles = 0;
  u64 instrs = 0;
  for (auto _ : state) {
    system::HeteroSystem sys(params);
    sys.load_host_program(pkg.host_program);
    host_cycles += sys.run_to_host_halt();
    instrs += sys.soc().cluster().stats().total_instrs();
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(host_cycles) / 1e6, benchmark::Counter::kIsRate);
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSystemOffload)->Unit(benchmark::kMillisecond);

void BM_KernelCodegen(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  for (auto _ : state) {
    const auto kc = kernels::make_cnn(cfg.features, 4,
                                      kernels::Target::kCluster, 1);
    benchmark::DoNotOptimize(kc.program.code.size());
  }
}
BENCHMARK(BM_KernelCodegen)->Unit(benchmark::kMillisecond);

void BM_ImageSerialisation(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_cnn(cfg.features, 4,
                                    kernels::Target::kCluster, 1);
  for (auto _ : state) {
    const auto image = isa::serialize(kc.program);
    const auto back = isa::deserialize(image);
    benchmark::DoNotOptimize(back.code.size());
  }
}
BENCHMARK(BM_ImageSerialisation)->Unit(benchmark::kMicrosecond);

}  // namespace

#ifndef ULP_BUILD_TYPE
#define ULP_BUILD_TYPE "unknown"
#endif

// Like BENCHMARK_MAIN(), plus build-provenance support: `--ulp-build-info`
// prints the configuration this binary was compiled with and exits (the
// recording scripts refuse to record debug numbers), and the same fields
// are stamped into the benchmark JSON context. gbench's own
// "library_build_type" describes the installed benchmark *library*, not
// this binary — these fields are the authoritative ones.
int main(int argc, char** argv) {
#ifdef NDEBUG
  const char* asserts = "off";
#else
  const char* asserts = "on";
#endif
  // The mode the environment selects for this process (ULP_BLOCK_CACHE /
  // ULP_REFERENCE_STEPPING latches): reference stepping implies per-cycle
  // dispatch, so the block cache is reported off under it.
  const bool bc_on = ulp::config::block_cache_default() &&
                     !ulp::config::reference_stepping_default();
  const char* block_cache = bc_on ? "on" : "off";
  // Multi-core windows ride on the block cache (ULP_MC_WINDOWS latch);
  // dispatch is the compiled-in block-handler backend.
  const char* mc_windows =
      bc_on && ulp::config::multicore_windows_default() ? "on" : "off";
  const char* dispatch = ulp::core::block_dispatch_backend();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ulp-build-info") == 0) {
      std::printf("build_type=%s asserts=%s block_cache=%s mc_windows=%s "
                  "dispatch=%s\n",
                  ULP_BUILD_TYPE, asserts, block_cache, mc_windows, dispatch);
      return 0;
    }
  }
  benchmark::AddCustomContext("ulp_build_type", ULP_BUILD_TYPE);
  benchmark::AddCustomContext("ulp_asserts", asserts);
  benchmark::AddCustomContext("ulp_block_cache", block_cache);
  benchmark::AddCustomContext("ulp_mc_windows", mc_windows);
  benchmark::AddCustomContext("ulp_dispatch", dispatch);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
