// Simulator throughput micro-benchmarks (google-benchmark).
//
// Not a paper figure: this measures the reproduction itself — simulated
// MIPS of the single-core ISS and the 4-core cluster, and the codegen /
// serialisation paths — so regressions in the simulator's own performance
// are visible.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace ulp;

void BM_SingleCoreIss(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(cfg.features, 1,
                                            kernels::Target::kFlat, 1);
  u64 instrs = 0;
  for (auto _ : state) {
    const auto out = kernels::run_on_flat(kc, cfg);
    instrs += out.stats.total_instrs();
    benchmark::DoNotOptimize(out.cycles);
  }
  state.counters["sim_MIPS"] = benchmark::Counter(
      static_cast<double>(instrs) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleCoreIss)->Unit(benchmark::kMillisecond);

void BM_Cluster4Cores(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(cfg.features, 4,
                                            kernels::Target::kCluster, 1);
  u64 cycles = 0;
  for (auto _ : state) {
    const auto out = kernels::run_on_cluster(kc, cfg, 4);
    cycles += out.cycles;
    benchmark::DoNotOptimize(out.cycles);
  }
  state.counters["sim_Mcycles"] = benchmark::Counter(
      static_cast<double>(cycles) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Cluster4Cores)->Unit(benchmark::kMillisecond);

void BM_KernelCodegen(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  for (auto _ : state) {
    const auto kc = kernels::make_cnn(cfg.features, 4,
                                      kernels::Target::kCluster, 1);
    benchmark::DoNotOptimize(kc.program.code.size());
  }
}
BENCHMARK(BM_KernelCodegen)->Unit(benchmark::kMillisecond);

void BM_ImageSerialisation(benchmark::State& state) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_cnn(cfg.features, 4,
                                    kernels::Target::kCluster, 1);
  for (auto _ : state) {
    const auto image = isa::serialize(kc.program);
    const auto back = isa::deserialize(image);
    benchmark::DoNotOptimize(back.code.size());
  }
}
BENCHMARK(BM_ImageSerialisation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
