// Ablation: body-bias boost (Section III-B / reference [6]).
//
// PULP's FD-SOI cores can be forward-body-biased for extra frequency at a
// leakage penalty; the paper integrates the knob "directly in the thread
// creation/destruction routine". This bench shows where boost pays off:
// for each power budget, the best nominal and best boosted operating
// points and the resulting matmul throughput.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Ablation: forward body bias vs power budget",
                      "best operating point and matmul throughput per mode");

  const auto m = bench::measure_kernel(kernels::all_kernels()[0]);
  const auto chi = power::ActivityFactors::from_stats(m.stats_cluster_4);
  power::PulpPowerModel pm;

  std::printf("%10s | %22s | %22s | %7s\n", "budget", "nominal (V / MHz)",
              "with FBB (V / MHz / b)", "gain");
  for (double budget : {mw(0.5), mw(1), mw(2), mw(5), mw(10), mw(20),
                        mw(50), mw(100)}) {
    const auto plain = pm.max_performance_point(budget, chi, false);
    const auto boost = pm.max_performance_point(budget, chi, true);
    if (!plain || !boost) {
      std::printf("%8.1fmW | %22s | %22s |\n", budget * 1e3, "--", "--");
      continue;
    }
    std::printf("%8.1fmW |        %4.2fV / %5.1fM |  %4.2fV / %5.1fM %s |  %5.2fx\n",
                budget * 1e3, plain->vdd, plain->freq_hz / 1e6, boost->vdd,
                boost->freq_hz / 1e6,
                boost->bias == power::BiasMode::kForwardBias ? "FBB" : "   ",
                boost->freq_hz / plain->freq_hz);
  }
  std::printf(
      "\nReading: under tight (leakage-dominated) budgets the 3x leakage\n"
      "penalty of forward bias buys nothing; once the budget is dynamic-\n"
      "power-dominated the 1.3x frequency headroom becomes nearly free.\n"
      "Within the paper's 10 mW envelope the knob is mostly neutral, which\n"
      "is why the runtime can toggle it per-thread without a policy.\n");
  return 0;
}
