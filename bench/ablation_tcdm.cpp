// Ablation: TCDM banking factor vs. parallel efficiency.
//
// The word-level interleaved multi-banked TCDM (Section III-B, [30]) exists
// to keep 4 cores + DMA fed without per-core caches. This bench sweeps the
// bank count and reports 4-core cycles and conflict counts on the two most
// memory-hungry kernels — demonstrating why the design point is 8 banks.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Ablation: TCDM bank count vs 4-core performance",
                      "cycles and bank conflicts, matmul and hog");

  const auto cfg = core::or10n_config();
  // The two most load/store-intensive kernels (hog is compute-bound and
  // insensitive to banking; the matmul family stresses the interconnect).
  for (const char* name : {"matmul", "matmul (short)"}) {
    const kernels::KernelInfo* info = nullptr;
    for (const auto& k : kernels::all_kernels()) {
      if (k.name == name) info = &k;
    }
    std::printf("\n%-16s %8s %14s %14s %10s\n", name, "banks", "cycles",
                "conflicts", "vs 8");
    std::vector<std::pair<u32, u64>> rows;
    for (u32 banks : {1u, 2u, 4u, 8u, 16u}) {
      cluster::ClusterParams params;
      params.num_cores = 4;
      params.core_config = cfg;
      params.tcdm_banks = banks;
      params.tcdm_bank_bytes = 64 * 1024 / banks;  // constant total size
      cluster::Cluster cl(params);
      const auto kc =
          info->factory(cfg.features, 4, kernels::Target::kCluster, 1);
      cl.load_program(kc.program);
      for (size_t i = 0; i < kc.input.size(); ++i) {
        cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                             kc.input[i]);
      }
      const u64 cycles = cl.run();
      rows.emplace_back(banks, cycles);
      std::printf("%-16s %8u %14llu %14llu", "", banks,
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(
                      cl.tcdm().total_conflicts()));
      std::printf("\n");
    }
    u64 ref = 0;
    for (const auto& [banks, cycles] : rows) {
      if (banks == 8) ref = cycles;
    }
    std::printf("%-16s slowdown vs 8 banks:", "");
    for (const auto& [banks, cycles] : rows) {
      std::printf("  %ub=%.2fx", banks,
                  static_cast<double>(cycles) / static_cast<double>(ref));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: with few banks the four cores serialise on the\n"
      "interconnect; at 8 banks (the PULP design point) conflicts are a\n"
      "small fraction and further banking shows diminishing returns.\n");
  return 0;
}
