// Ablation: coupling-link variants (Discussion section).
//
// The paper observes that the SPI bottleneck "can be lifted by temporarily
// raising the MCU frequency when performing a data transfer" and that a
// link clock decoupled from the MCU core clock "completely removes the
// bottleneck". This bench compares, at each MCU frequency:
//   * single-bit SPI tied to the MCU clock (the physical prototype),
//   * QSPI tied to the MCU clock (the paper's Figure 5b assumption),
//   * QSPI with a decoupled 24 MHz link clock (the proposed variation).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Ablation: coupling-link variants",
                      "asymptotic offload efficiency (matmul, 0.5 V point)");

  const auto& matmul = kernels::all_kernels()[0];
  const auto cfg = core::or10n_config();
  const auto kc =
      matmul.factory(cfg.features, 4, kernels::Target::kCluster, 1);
  power::PulpPowerModel pm;
  const power::OperatingPoint op{0.5, pm.fmax_hz(0.5)};

  struct Variant {
    const char* name;
    link::SpiLinkConfig cfg;
  };
  const Variant variants[] = {
      {"SPI x1 (proto)", {.lanes = 1, .max_freq_hz = mhz(24)}},
      {"QSPI x4", {.lanes = 4, .max_freq_hz = mhz(48)}},
      {"QSPI decoupled",
       {.lanes = 4, .max_freq_hz = mhz(48), .decoupled_clock_hz = mhz(24)}},
  };

  std::printf("%-16s |", "link \\ f_mcu");
  const std::vector<double> freqs = {mhz(2), mhz(8), mhz(16), mhz(26)};
  for (double f : freqs) std::printf(" %7.0fM", f / 1e6);
  std::printf("\n");
  for (const auto& v : variants) {
    std::printf("%-16s |", v.name);
    for (double f : freqs) {
      runtime::OffloadSession session(host::stm32l476(), f,
                                      link::SpiLink(v.cfg));
      const auto o = session.run(kc.offload_request(), op);
      std::printf("  %7.3f", o.timing.efficiency(1u << 14, true));
    }
    std::printf("\n");
  }
  // The Discussion's second variation: the sensor writes its data directly
  // into the accelerator's memory through a dedicated interface; the
  // coupling link only carries results and control. Model: t_in vanishes.
  std::printf("%-16s |", "sensor-direct");
  for (double f : freqs) {
    runtime::OffloadSession session(host::stm32l476(), f,
                                    link::SpiLink(variants[0].cfg));
    auto o = session.run(kc.offload_request(), op);
    runtime::OffloadTiming t = o.timing;
    t.t_in_s = 0;  // inputs no longer cross the host link
    std::printf("  %7.3f", t.efficiency(1u << 14, true));
  }
  std::printf("\n");

  std::printf(
      "\nReading: values are double-buffered efficiency with the code\n"
      "offload fully amortised. The decoupled link is frequency-flat: the\n"
      "MCU can idle at 2 MHz and the accelerator still runs unstarved —\n"
      "the Discussion section's proposed improvement. 'sensor-direct'\n"
      "removes the input stream from the (single-bit) host link entirely:\n"
      "even the slowest prototype link then only limits result readout.\n");
  return 0;
}
