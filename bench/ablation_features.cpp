// Ablation: contribution of each OR10N microarchitectural feature.
//
// The paper attributes the integer-kernel speedups to "the register-register
// MAC instruction, infra-word vectorization and unaligned load/store
// operations" plus hardware loops. This bench quantifies each claim by
// disabling one feature at a time (the code generator then lowers it the
// way a compiler would for the reduced core) and reporting the slowdown.
#include <cstdio>

#include "bench_util.hpp"

namespace {

ulp::u64 cycles_with(const ulp::kernels::KernelInfo& info,
                     const ulp::core::CoreConfig& cfg) {
  const auto kc =
      info.factory(cfg.features, 1, ulp::kernels::Target::kFlat, 1);
  return ulp::kernels::run_on_flat(kc, cfg).cycles;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulp;
  bench::Observability obs(argc, argv);
  bench::print_header("Ablation: OR10N feature contributions",
                      "single core, slowdown when one feature is disabled");

  struct Toggle {
    const char* name;
    void (*apply)(core::CoreFeatures&);
  };
  const Toggle toggles[] = {
      {"-simd", [](core::CoreFeatures& f) { f.has_simd = false; }},
      // MAC only becomes load-bearing once SIMD is gone (the dot-product
      // units subsume it), so it is ablated on top of -simd.
      {"-simd-mac",
       [](core::CoreFeatures& f) {
         f.has_simd = false;
         f.has_mac = false;
       }},
      {"-hwloops", [](core::CoreFeatures& f) { f.has_hwloops = false; }},
      {"-postinc", [](core::CoreFeatures& f) { f.has_postinc = false; }},
  };

  std::printf("%-16s %12s |", "Benchmark", "or10n cyc");
  for (const auto& t : toggles) std::printf(" %9s", t.name);
  std::printf(" %9s\n", "baseline");

  for (const auto& info : kernels::all_kernels()) {
    const auto full = core::or10n_config();
    const u64 ref = cycles_with(info, full);
    std::printf("%-16s %12llu |", info.name.c_str(),
                static_cast<unsigned long long>(ref));
    for (const auto& t : toggles) {
      core::CoreConfig cfg = full;
      t.apply(cfg.features);
      const u64 c = cycles_with(info, cfg);
      std::printf("  %7.3fx", static_cast<double>(c) /
                                  static_cast<double>(ref));
    }
    const u64 base = cycles_with(info, core::baseline_config());
    std::printf("  %7.3fx\n",
                static_cast<double>(base) / static_cast<double>(ref));
  }
  std::printf(
      "\nReading: x-factors are slowdowns relative to the full OR10N.\n"
      "SIMD matters for the integer kernels only; MAC for everything that\n"
      "accumulates integers; hardware loops dominate the tight fixed-point\n"
      "inner loops; the last column is the plain-RISC baseline (all off,\n"
      "no unrolling).\n");
  return 0;
}
