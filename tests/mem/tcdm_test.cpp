#include "mem/tcdm.hpp"

#include <gtest/gtest.h>

#include "mem/bus.hpp"

namespace ulp::mem {
namespace {

TEST(Tcdm, WordInterleavedBankMapping) {
  Tcdm t(0x10000000, 8, 1024);
  EXPECT_EQ(t.bank_of(0x10000000), 0u);
  EXPECT_EQ(t.bank_of(0x10000004), 1u);
  EXPECT_EQ(t.bank_of(0x1000001C), 7u);
  EXPECT_EQ(t.bank_of(0x10000020), 0u);  // wraps after 8 words
  // Sub-word accesses inside the same word hit the same bank.
  EXPECT_EQ(t.bank_of(0x10000005), 1u);
  EXPECT_EQ(t.bank_of(0x10000007), 1u);
}

TEST(Tcdm, OneGrantPerBankPerCycle) {
  Tcdm t(0, 4, 1024);
  t.begin_cycle();
  EXPECT_TRUE(t.try_grant(0x0));     // bank 0
  EXPECT_FALSE(t.try_grant(0x0));    // same bank: conflict
  EXPECT_FALSE(t.try_grant(0x10));   // word 4 -> bank 0 again: conflict
  EXPECT_TRUE(t.try_grant(0x4));     // bank 1: fine
  EXPECT_TRUE(t.try_grant(0x8));     // bank 2
  EXPECT_TRUE(t.try_grant(0xC));     // bank 3
  EXPECT_EQ(t.total_conflicts(), 2u);
  EXPECT_EQ(t.total_accesses(), 4u);

  t.begin_cycle();
  EXPECT_TRUE(t.try_grant(0x0));  // next cycle: bank free again
}

TEST(Tcdm, RejectsNonPowerOfTwoBanks) {
  EXPECT_THROW(Tcdm(0, 3, 1024), SimError);
}

TEST(Tcdm, LoadStoreFunctional) {
  Tcdm t(0x10000000, 8, 1024);
  t.store(0x10000010, 4, 0xA5A5A5A5);
  EXPECT_EQ(t.load(0x10000010, 4, false), 0xA5A5A5A5u);
  t.store(0x10000014, 2, 0x8000);
  EXPECT_EQ(t.load(0x10000014, 2, true), 0xFFFF8000u);
}

TEST(ClusterBus, RoutesTcdmL2AndRejectsUnmapped) {
  Tcdm t(0x10000000, 8, 1024);
  Sram l2(0x1C000000, 4096);
  ClusterBus bus(&t, &l2, 4);
  bus.begin_cycle();

  const BusResult rt = bus.access(0x10000000, 4, true, 77, false, 0);
  EXPECT_TRUE(rt.granted);
  EXPECT_EQ(rt.latency, 1u);

  const BusResult rl = bus.access(0x1C000000, 4, true, 88, false, 0);
  EXPECT_TRUE(rl.granted);
  EXPECT_EQ(rl.latency, 4u);

  EXPECT_THROW((void)bus.access(0x50000000, 4, false, 0, false, 0), SimError);
  EXPECT_EQ(bus.debug_load(0x10000000, 4, false), 77u);
  EXPECT_EQ(bus.debug_load(0x1C000000, 4, false), 88u);
}

TEST(ClusterBus, L2SinglePortPerCycle) {
  Tcdm t(0x10000000, 8, 1024);
  Sram l2(0x1C000000, 4096);
  ClusterBus bus(&t, &l2, 4);
  bus.begin_cycle();
  EXPECT_TRUE(bus.access(0x1C000000, 4, false, 0, false, 0).granted);
  EXPECT_FALSE(bus.access(0x1C000010, 4, false, 0, false, 1).granted);
  bus.begin_cycle();
  EXPECT_TRUE(bus.access(0x1C000010, 4, false, 0, false, 1).granted);
}

TEST(ClusterBus, TcdmConflictStallsSecondMaster) {
  Tcdm t(0x10000000, 2, 1024);
  Sram l2(0x1C000000, 1024);
  ClusterBus bus(&t, &l2, 4);
  bus.begin_cycle();
  // Word 0 and word 2 both map to bank 0 of a 2-bank TCDM.
  EXPECT_TRUE(bus.access(0x10000000, 4, false, 0, false, 0).granted);
  EXPECT_FALSE(bus.access(0x10000008, 4, false, 0, false, 1).granted);
  // A bank-1 access still goes through the same cycle.
  EXPECT_TRUE(bus.access(0x10000004, 4, false, 0, false, 2).granted);
}

}  // namespace
}  // namespace ulp::mem
