#include "mem/icache.hpp"

#include <gtest/gtest.h>

namespace ulp::mem {
namespace {

TEST(SharedICache, FirstTouchMissesThenHits) {
  SharedICache ic(4, 8);
  ic.reset(64);
  EXPECT_EQ(ic.fetch(0), 8u);  // cold line
  EXPECT_EQ(ic.fetch(1), 0u);  // same line
  EXPECT_EQ(ic.fetch(3), 0u);
  EXPECT_EQ(ic.fetch(4), 8u);  // next line
  EXPECT_EQ(ic.fetch(0), 0u);  // still resident
  EXPECT_EQ(ic.misses(), 2u);
  EXPECT_EQ(ic.hits(), 3u);
}

TEST(SharedICache, SharedAcrossFetchers) {
  // The same object serves all cores: a line one core pulled is a hit for
  // the others (no per-requestor state by construction).
  SharedICache ic(4, 8);
  ic.reset(16);
  EXPECT_EQ(ic.fetch(8), 8u);
  EXPECT_EQ(ic.fetch(8), 0u);
  EXPECT_EQ(ic.fetch(9), 0u);
}

TEST(SharedICache, ResetForgetsEverything) {
  SharedICache ic(4, 8);
  ic.reset(16);
  (void)ic.fetch(0);
  ic.reset(16);
  EXPECT_EQ(ic.fetch(0), 8u);
  EXPECT_EQ(ic.misses(), 1u);  // counters restart too
}

TEST(SharedICache, FetchBeyondProgramIsCaught) {
  SharedICache ic(4, 8);
  ic.reset(8);
  EXPECT_THROW((void)ic.fetch(1000), SimError);
}

TEST(SharedICache, MissCountBoundedByLines) {
  SharedICache ic(4, 8);
  ic.reset(100);
  for (int round = 0; round < 5; ++round) {
    for (u32 pc = 0; pc < 100; ++pc) (void)ic.fetch(pc);
  }
  EXPECT_EQ(ic.misses(), 25u);  // ceil(100 instructions / 4 per line)
}

}  // namespace
}  // namespace ulp::mem
