#include "mem/mem.hpp"

#include <gtest/gtest.h>

#include "mem/bus.hpp"

namespace ulp::mem {
namespace {

TEST(LoadStoreLe, ByteOrdering) {
  std::vector<u8> buf(8, 0);
  store_le(buf, 0, 4, 0x11223344);
  EXPECT_EQ(buf[0], 0x44);
  EXPECT_EQ(buf[1], 0x33);
  EXPECT_EQ(buf[2], 0x22);
  EXPECT_EQ(buf[3], 0x11);
  EXPECT_EQ(load_le(buf, 0, 4, false), 0x11223344u);
}

TEST(LoadStoreLe, SignExtension) {
  std::vector<u8> buf(4, 0);
  store_le(buf, 0, 2, 0x8001);
  EXPECT_EQ(load_le(buf, 0, 2, true), 0xFFFF8001u);
  EXPECT_EQ(load_le(buf, 0, 2, false), 0x8001u);
  store_le(buf, 2, 1, 0x80);
  EXPECT_EQ(load_le(buf, 2, 1, true), 0xFFFFFF80u);
  EXPECT_EQ(load_le(buf, 2, 1, false), 0x80u);
}

TEST(LoadStoreLe, RejectsBadSize) {
  std::vector<u8> buf(8, 0);
  EXPECT_THROW((void)load_le(buf, 0, 0, false), SimError);
  EXPECT_THROW((void)load_le(buf, 0, 5, false), SimError);
  EXPECT_THROW(store_le(buf, 0, 8, 0), SimError);
}

TEST(LoadStoreLe, ThreeByteSubWordAccess) {
  // Size 3 = the straddling part of an unaligned word access.
  std::vector<u8> buf(8, 0);
  store_le(buf, 1, 3, 0xABCDEF);
  EXPECT_EQ(load_le(buf, 1, 3, false), 0xABCDEFu);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[4], 0);
  // Sign extension from bit 23.
  store_le(buf, 1, 3, 0x800000);
  EXPECT_EQ(load_le(buf, 1, 3, true), 0xFF800000u);
}

TEST(Sram, ContainsAndBounds) {
  Sram s(0x1000, 256);
  EXPECT_TRUE(s.contains(0x1000, 4));
  EXPECT_TRUE(s.contains(0x10FC, 4));
  EXPECT_FALSE(s.contains(0x10FD, 4));
  EXPECT_FALSE(s.contains(0x0FFF, 1));
  EXPECT_THROW((void)s.load(0x0FFF, 4, false), SimError);
  EXPECT_THROW(s.store(0x1100, 1, 0), SimError);
}

TEST(Sram, LoadStoreAtBase) {
  Sram s(0x2000, 64);
  s.store(0x2000, 4, 0xCAFEBABE);
  EXPECT_EQ(s.load(0x2000, 4, false), 0xCAFEBABEu);
  s.store(0x203C, 2, 0xBEEF);
  EXPECT_EQ(s.load(0x203C, 2, false), 0xBEEFu);
}

TEST(SimpleBus, AlwaysGrantsWithConfiguredLatency) {
  Sram s(0, 64);
  SimpleBus bus(&s, 2);
  const BusResult w = bus.access(8, 4, true, 0x1234, false, 0);
  EXPECT_TRUE(w.granted);
  EXPECT_EQ(w.latency, 2u);
  const BusResult r = bus.access(8, 4, false, 0, false, 0);
  EXPECT_TRUE(r.granted);
  EXPECT_EQ(r.data, 0x1234u);
}

}  // namespace
}  // namespace ulp::mem
