// Self-modifying code through the executable-code window: stores into the
// window (core stores, DMA beats, host debug writes) must patch the decoded
// program in place and invalidate the basic-block translation cache, and
// every stepping mode — per-cycle reference, plain fast-forward, block-cached
// fast-forward, and block-cached multi-core windows — must agree on the
// patched execution bit for bit, including exact cycle counts.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "isa/encoding.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using cluster::ClusterParams;
using codegen::Builder;
using isa::Opcode;

constexpr Addr kWindow = cluster::kTcdmBase + 0x8000;  ///< SMC code window.
constexpr Addr kResults = cluster::kTcdmBase + 0x100;  ///< Per-pass outputs.
constexpr Addr kStaging = cluster::kL2Base + 0x4000;   ///< DMA patch source.

u32 encoded_marker(i32 value) {
  isa::Instr in;
  in.op = Opcode::kAddi;
  in.rd = 5;
  in.imm = value;
  return isa::encode(in);
}

/// Everything the three stepping modes must agree on for these programs.
struct Outcome {
  u64 cycles = 0;
  u32 first = 0;   ///< Marker stored on the pre-patch pass.
  u32 second = 0;  ///< Marker stored on the post-patch pass.
  u64 flushes = 0;  ///< Block-cache invalidations (0 when cache off).
  u64 decodes = 0;
};

enum class Mode { kReference, kFastForward, kBlockCached };

Outcome run_mode(const isa::Program& program, Mode mode) {
  ClusterParams params;
  params.num_cores = 1;
  params.code_window_base = kWindow;
  params.reference_stepping = mode == Mode::kReference;
  params.block_cache = mode == Mode::kBlockCached;
  Cluster cl(params);
  cl.load_program(program);
  Outcome out;
  out.cycles = cl.run(1'000'000);
  out.first = cl.bus().debug_load(kResults, 4, false);
  out.second = cl.bus().debug_load(kResults + 4, 4, false);
  if (const auto* stats = cl.core(0).block_stats(); stats != nullptr) {
    out.flushes = stats->flushes;
    out.decodes = stats->decodes;
  }
  return out;
}

/// Runs the program in all three modes and checks they are indistinguishable
/// (the block-cached outcome is returned for mode-specific assertions).
Outcome check_three_way(const isa::Program& program) {
  const Outcome ref = run_mode(program, Mode::kReference);
  const Outcome ff = run_mode(program, Mode::kFastForward);
  const Outcome bc = run_mode(program, Mode::kBlockCached);
  EXPECT_EQ(ref.cycles, ff.cycles);
  EXPECT_EQ(ref.cycles, bc.cycles);
  EXPECT_EQ(ref.first, ff.first);
  EXPECT_EQ(ref.first, bc.first);
  EXPECT_EQ(ref.second, ff.second);
  EXPECT_EQ(ref.second, bc.second);
  EXPECT_EQ(ff.flushes, 0u) << "plain fast-forward must not run the cache";
  return bc;
}

// A core store into the code window rewrites an instruction the core has
// already executed from a cached block: the next pass around the loop must
// re-decode and see the new instruction, in every mode, at the same cycle.
TEST(SmcBlockCache, CoreStorePatchesExecutedBlock) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  bld.li(6, 0);  // pass counter
  const auto loop = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(loop);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);  // the patch target
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kAddi, 1, 1, 0, 4);
  bld.branch(Opcode::kBne, 6, 0, done);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.li(3, encoded_marker(222));
  bld.li(2, kWindow + 4 * target);
  bld.emit(Opcode::kSw, 3, 2, 0, 0);  // self-modifying store
  bld.jal(0, loop);
  bld.bind(done);
  bld.halt();

  const Outcome bc = check_three_way(bld.finalize());
  EXPECT_EQ(bc.first, 111u);
  EXPECT_EQ(bc.second, 222u);
  EXPECT_GE(bc.flushes, 1u) << "the patch must invalidate cached blocks";
  EXPECT_GE(bc.decodes, 2u) << "the patched block must be decoded again";
}

// A DMA transfer whose destination overlaps the code window must take the
// per-cycle replay path (the analytic copy bypasses the bus watcher) and
// patch the program beat by beat, identically in every mode.
TEST(SmcBlockCache, DmaTransferPatchesCode) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  bld.li(6, 0);  // pass counter
  const auto loop = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(loop);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);  // the patch target
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kAddi, 1, 1, 0, 4);
  bld.branch(Opcode::kBne, 6, 0, done);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.li(9, kStaging);
  bld.li(10, kWindow + 4 * target);
  bld.li(11, 4);
  bld.dma_start(8, 9, 10, 11);  // copy the staged patch onto the target
  bld.dma_wait(8, 12);
  bld.jal(0, loop);
  bld.bind(done);
  bld.halt();

  isa::Program program = bld.finalize();
  const u32 word = encoded_marker(222);
  isa::Segment staged;
  staged.addr = kStaging;
  for (int i = 0; i < 4; ++i) {
    staged.bytes.push_back(static_cast<u8>(word >> (8 * i)));
  }
  program.data.push_back(staged);

  const Outcome bc = check_three_way(program);
  EXPECT_EQ(bc.first, 111u);
  EXPECT_EQ(bc.second, 222u);
  EXPECT_GE(bc.flushes, 1u);
}

// A host debug write through the cluster bus lands before the first fetch
// but after load_program armed the watcher: the executed program is the
// patched one in every mode.
TEST(SmcBlockCache, HostDebugWritePatchesCode) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kSw, 5, 1, 0, 4);
  bld.halt();
  const isa::Program program = bld.finalize();

  u64 cycles[3];
  int i = 0;
  for (const Mode mode :
       {Mode::kReference, Mode::kFastForward, Mode::kBlockCached}) {
    ClusterParams params;
    params.num_cores = 1;
    params.code_window_base = kWindow;
    params.reference_stepping = mode == Mode::kReference;
    params.block_cache = mode == Mode::kBlockCached;
    Cluster cl(params);
    cl.load_program(program);
    cl.bus().debug_store(kWindow + 4 * target, 4, encoded_marker(77));
    cycles[i++] = cl.run(1'000'000);
    EXPECT_EQ(cl.bus().debug_load(kResults, 4, false), 77u);
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(cycles[0], cycles[2]);
}

// Without a code window the cache never invalidates and a "patch" store is
// plain data traffic: the marker stays at its build-time value while the
// stored word lands in memory untouched — the seed's immutable-code model.
TEST(SmcBlockCache, NoWindowMeansImmutableCode) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  bld.li(6, 0);
  const auto loop = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(loop);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kAddi, 1, 1, 0, 4);
  bld.branch(Opcode::kBne, 6, 0, done);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.li(3, encoded_marker(222));
  bld.li(2, kWindow + 4 * target);
  bld.emit(Opcode::kSw, 3, 2, 0, 0);
  bld.jal(0, loop);
  bld.bind(done);
  bld.halt();

  ClusterParams params;
  params.num_cores = 1;
  params.block_cache = true;  // window disabled: no invalidation machinery
  Cluster cl(params);
  cl.load_program(bld.finalize());
  cl.run(1'000'000);
  EXPECT_EQ(cl.bus().debug_load(kResults, 4, false), 111u);
  EXPECT_EQ(cl.bus().debug_load(kResults + 4, 4, false), 111u);
  EXPECT_EQ(cl.bus().debug_load(kWindow + 4 * target, 4, false),
            encoded_marker(222));
}

// ---- Concurrent writers vs multi-core block windows -------------------
//
// Four cores share the code window: three workers loop through a cached
// marker instruction while a fourth (or the DMA engine) rewrites that very
// instruction mid-run. The generation bump must stop any multi-core block
// window in flight, flush every core's cache, and leave all four stepping
// modes — per-cycle reference, plain fast-forward, solo block-cached, and
// block-cached with multi-core windows — bit-identical in cycle counts and
// every stored word.

constexpr u32 kMcPasses = 24;
constexpr u32 kMcWorkers = 3;

enum class McMode { kReference, kFastForward, kBlockCached, kMcWindows };

struct McOutcome {
  u64 cycles = 0;
  std::vector<u32> words;  ///< kMcWorkers * kMcPasses, worker-major.
  u64 flushes = 0;         ///< Summed over cores (0 when cache off).
  u64 cached_runs = 0;     ///< hits + chained, summed over cores.

  bool operator==(const McOutcome& o) const {
    return cycles == o.cycles && words == o.words;
  }
};

McOutcome run_mc_mode(const isa::Program& program, McMode mode) {
  ClusterParams params;
  params.num_cores = 4;
  params.code_window_base = kWindow;
  params.reference_stepping = mode == McMode::kReference;
  params.block_cache =
      mode == McMode::kBlockCached || mode == McMode::kMcWindows;
  params.multicore_windows = mode == McMode::kMcWindows;
  Cluster cl(params);
  cl.load_program(program);
  McOutcome out;
  out.cycles = cl.run(1'000'000);
  for (u32 c = 0; c < kMcWorkers; ++c) {
    for (u32 p = 0; p < kMcPasses; ++p) {
      out.words.push_back(
          cl.bus().debug_load(kResults + (c << 7) + 4 * p, 4, false));
    }
  }
  for (u32 c = 0; c < 4; ++c) {
    if (const auto* stats = cl.core(c).block_stats(); stats != nullptr) {
      out.flushes += stats->flushes;
      out.cached_runs += stats->hits + stats->chained;
    }
  }
  return out;
}

/// Builds the worker side: cores 0..2 store the marker instruction's value
/// once per pass into their own result strip; core 3 branches to `writer`.
/// Returns the patch target (instruction index of the marker addi).
u32 build_workers(Builder* bld, Builder::Label writer) {
  bld->csr_coreid(1);
  bld->li(2, 3);
  bld->branch(Opcode::kBeq, 1, 2, writer);
  bld->emit(Opcode::kSlli, 3, 1, 0, 7);  // result strip = kResults + id*128
  bld->li(4, kResults);
  bld->emit(Opcode::kAdd, 3, 3, 4, 0);
  bld->li(6, kMcPasses);
  u32 target = 0;
  bld->loop(6, 10, [&] {
    target = bld->here();
    bld->emit(Opcode::kAddi, 5, 0, 0, 111);  // the patch target
    bld->emit(Opcode::kSw, 5, 3, 0, 0);
    bld->emit(Opcode::kAddi, 3, 3, 0, 4);
  });
  bld->halt();
  return target;
}

void check_four_way(const isa::Program& program) {
  const McOutcome ref = run_mc_mode(program, McMode::kReference);
  const McOutcome ff = run_mc_mode(program, McMode::kFastForward);
  const McOutcome bc = run_mc_mode(program, McMode::kBlockCached);
  const McOutcome mc = run_mc_mode(program, McMode::kMcWindows);
  EXPECT_EQ(ref.cycles, ff.cycles);
  EXPECT_EQ(ref.cycles, bc.cycles);
  EXPECT_EQ(ref.cycles, mc.cycles);
  EXPECT_TRUE(ref == ff) << "fast-forward diverged";
  EXPECT_TRUE(ref == bc) << "solo block cache diverged";
  EXPECT_TRUE(ref == mc) << "multi-core windows diverged";
  // The patch must land mid-run: every worker sees the original marker on
  // its first pass and the patched one on its last.
  for (u32 c = 0; c < kMcWorkers; ++c) {
    EXPECT_EQ(ref.words[c * kMcPasses], 111u) << "worker " << c;
    EXPECT_EQ(ref.words[c * kMcPasses + kMcPasses - 1], 222u)
        << "worker " << c;
  }
  // And the multi-core leg must actually have exercised the machinery:
  // cached execution happened, and the generation bump flushed it.
  EXPECT_GT(mc.cached_runs, 0u);
  EXPECT_GE(mc.flushes, 1u);
}

// A core storing into a *sibling's* (shared) code window mid-multi-core
// window: the generation bump must end the window on the spot, with the
// partial window's accounting bit-identical to per-cycle stepping.
TEST(SmcBlockCache, SiblingStorePatchesCodeMidMcWindow) {
  Builder bld(core::or10n_config().features);
  const auto writer = bld.make_label();
  const u32 target = build_workers(&bld, writer);

  bld.bind(writer);  // core 3: let the workers get going, then patch
  bld.li(4, 30);
  bld.loop(4, 10, [&] { bld.nop(); });
  bld.li(3, encoded_marker(222));
  bld.li(2, kWindow + 4 * target);
  bld.emit(Opcode::kSw, 3, 2, 0, 0);
  bld.halt();

  check_four_way(bld.finalize());
}

// The DMA engine writing a worker's code mid-run: transfers overlapping
// the code window patch beat by beat through the bus watcher, and every
// beat's generation bump must keep cached execution off the stale code.
TEST(SmcBlockCache, DmaPatchesCodeMidMcWindow) {
  Builder bld(core::or10n_config().features);
  const auto writer = bld.make_label();
  const u32 target = build_workers(&bld, writer);

  bld.bind(writer);  // core 3: delay, then DMA the staged patch in
  bld.li(4, 30);
  bld.loop(4, 10, [&] { bld.nop(); });
  bld.li(9, kStaging);
  bld.li(10, kWindow + 4 * target);
  bld.li(11, 4);
  bld.dma_start(8, 9, 10, 11);
  bld.dma_wait(8, 12);
  bld.halt();

  isa::Program program = bld.finalize();
  const u32 word = encoded_marker(222);
  isa::Segment staged;
  staged.addr = kStaging;
  for (int i = 0; i < 4; ++i) {
    staged.bytes.push_back(static_cast<u8>(word >> (8 * i)));
  }
  program.data.push_back(staged);

  check_four_way(program);
}

}  // namespace
}  // namespace ulp
