// Self-modifying code through the executable-code window: stores into the
// window (core stores, DMA beats, host debug writes) must patch the decoded
// program in place and invalidate the basic-block translation cache, and
// every stepping mode — per-cycle reference, plain fast-forward, block-cached
// fast-forward — must agree on the patched execution bit for bit, including
// exact cycle counts.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "isa/encoding.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using cluster::ClusterParams;
using codegen::Builder;
using isa::Opcode;

constexpr Addr kWindow = cluster::kTcdmBase + 0x8000;  ///< SMC code window.
constexpr Addr kResults = cluster::kTcdmBase + 0x100;  ///< Per-pass outputs.
constexpr Addr kStaging = cluster::kL2Base + 0x4000;   ///< DMA patch source.

u32 encoded_marker(i32 value) {
  isa::Instr in;
  in.op = Opcode::kAddi;
  in.rd = 5;
  in.imm = value;
  return isa::encode(in);
}

/// Everything the three stepping modes must agree on for these programs.
struct Outcome {
  u64 cycles = 0;
  u32 first = 0;   ///< Marker stored on the pre-patch pass.
  u32 second = 0;  ///< Marker stored on the post-patch pass.
  u64 flushes = 0;  ///< Block-cache invalidations (0 when cache off).
  u64 decodes = 0;
};

enum class Mode { kReference, kFastForward, kBlockCached };

Outcome run_mode(const isa::Program& program, Mode mode) {
  ClusterParams params;
  params.num_cores = 1;
  params.code_window_base = kWindow;
  params.reference_stepping = mode == Mode::kReference;
  params.block_cache = mode == Mode::kBlockCached;
  Cluster cl(params);
  cl.load_program(program);
  Outcome out;
  out.cycles = cl.run(1'000'000);
  out.first = cl.bus().debug_load(kResults, 4, false);
  out.second = cl.bus().debug_load(kResults + 4, 4, false);
  if (const auto* stats = cl.core(0).block_stats(); stats != nullptr) {
    out.flushes = stats->flushes;
    out.decodes = stats->decodes;
  }
  return out;
}

/// Runs the program in all three modes and checks they are indistinguishable
/// (the block-cached outcome is returned for mode-specific assertions).
Outcome check_three_way(const isa::Program& program) {
  const Outcome ref = run_mode(program, Mode::kReference);
  const Outcome ff = run_mode(program, Mode::kFastForward);
  const Outcome bc = run_mode(program, Mode::kBlockCached);
  EXPECT_EQ(ref.cycles, ff.cycles);
  EXPECT_EQ(ref.cycles, bc.cycles);
  EXPECT_EQ(ref.first, ff.first);
  EXPECT_EQ(ref.first, bc.first);
  EXPECT_EQ(ref.second, ff.second);
  EXPECT_EQ(ref.second, bc.second);
  EXPECT_EQ(ff.flushes, 0u) << "plain fast-forward must not run the cache";
  return bc;
}

// A core store into the code window rewrites an instruction the core has
// already executed from a cached block: the next pass around the loop must
// re-decode and see the new instruction, in every mode, at the same cycle.
TEST(SmcBlockCache, CoreStorePatchesExecutedBlock) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  bld.li(6, 0);  // pass counter
  const auto loop = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(loop);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);  // the patch target
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kAddi, 1, 1, 0, 4);
  bld.branch(Opcode::kBne, 6, 0, done);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.li(3, encoded_marker(222));
  bld.li(2, kWindow + 4 * target);
  bld.emit(Opcode::kSw, 3, 2, 0, 0);  // self-modifying store
  bld.jal(0, loop);
  bld.bind(done);
  bld.halt();

  const Outcome bc = check_three_way(bld.finalize());
  EXPECT_EQ(bc.first, 111u);
  EXPECT_EQ(bc.second, 222u);
  EXPECT_GE(bc.flushes, 1u) << "the patch must invalidate cached blocks";
  EXPECT_GE(bc.decodes, 2u) << "the patched block must be decoded again";
}

// A DMA transfer whose destination overlaps the code window must take the
// per-cycle replay path (the analytic copy bypasses the bus watcher) and
// patch the program beat by beat, identically in every mode.
TEST(SmcBlockCache, DmaTransferPatchesCode) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  bld.li(6, 0);  // pass counter
  const auto loop = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(loop);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);  // the patch target
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kAddi, 1, 1, 0, 4);
  bld.branch(Opcode::kBne, 6, 0, done);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.li(9, kStaging);
  bld.li(10, kWindow + 4 * target);
  bld.li(11, 4);
  bld.dma_start(8, 9, 10, 11);  // copy the staged patch onto the target
  bld.dma_wait(8, 12);
  bld.jal(0, loop);
  bld.bind(done);
  bld.halt();

  isa::Program program = bld.finalize();
  const u32 word = encoded_marker(222);
  isa::Segment staged;
  staged.addr = kStaging;
  for (int i = 0; i < 4; ++i) {
    staged.bytes.push_back(static_cast<u8>(word >> (8 * i)));
  }
  program.data.push_back(staged);

  const Outcome bc = check_three_way(program);
  EXPECT_EQ(bc.first, 111u);
  EXPECT_EQ(bc.second, 222u);
  EXPECT_GE(bc.flushes, 1u);
}

// A host debug write through the cluster bus lands before the first fetch
// but after load_program armed the watcher: the executed program is the
// patched one in every mode.
TEST(SmcBlockCache, HostDebugWritePatchesCode) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kSw, 5, 1, 0, 4);
  bld.halt();
  const isa::Program program = bld.finalize();

  u64 cycles[3];
  int i = 0;
  for (const Mode mode :
       {Mode::kReference, Mode::kFastForward, Mode::kBlockCached}) {
    ClusterParams params;
    params.num_cores = 1;
    params.code_window_base = kWindow;
    params.reference_stepping = mode == Mode::kReference;
    params.block_cache = mode == Mode::kBlockCached;
    Cluster cl(params);
    cl.load_program(program);
    cl.bus().debug_store(kWindow + 4 * target, 4, encoded_marker(77));
    cycles[i++] = cl.run(1'000'000);
    EXPECT_EQ(cl.bus().debug_load(kResults, 4, false), 77u);
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(cycles[0], cycles[2]);
}

// Without a code window the cache never invalidates and a "patch" store is
// plain data traffic: the marker stays at its build-time value while the
// stored word lands in memory untouched — the seed's immutable-code model.
TEST(SmcBlockCache, NoWindowMeansImmutableCode) {
  Builder bld(core::or10n_config().features);
  bld.li(1, kResults);
  bld.li(6, 0);
  const auto loop = bld.make_label();
  const auto done = bld.make_label();
  bld.bind(loop);
  const u32 target = bld.here();
  bld.emit(Opcode::kAddi, 5, 0, 0, 111);
  bld.emit(Opcode::kSw, 5, 1, 0, 0);
  bld.emit(Opcode::kAddi, 1, 1, 0, 4);
  bld.branch(Opcode::kBne, 6, 0, done);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.li(3, encoded_marker(222));
  bld.li(2, kWindow + 4 * target);
  bld.emit(Opcode::kSw, 3, 2, 0, 0);
  bld.jal(0, loop);
  bld.bind(done);
  bld.halt();

  ClusterParams params;
  params.num_cores = 1;
  params.block_cache = true;  // window disabled: no invalidation machinery
  Cluster cl(params);
  cl.load_program(bld.finalize());
  cl.run(1'000'000);
  EXPECT_EQ(cl.bus().debug_load(kResults, 4, false), 111u);
  EXPECT_EQ(cl.bus().debug_load(kResults + 4, 4, false), 111u);
  EXPECT_EQ(cl.bus().debug_load(kWindow + 4 * target, 4, false),
            encoded_marker(222));
}

}  // namespace
}  // namespace ulp
