// DMA property tests: byte-exact copies for arbitrary word-aligned
// (src, dst, len) triples, across memory regions and under contention.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "common/rng.hpp"

namespace ulp {
namespace {

using cluster::Cluster;

TEST(DmaFuzz, RandomTransfersAreByteExact) {
  Rng rng(0xD0A);
  for (int trial = 0; trial < 60; ++trial) {
    Cluster cl;
    const u32 len = static_cast<u32>(rng.uniform(1, 4096));
    // Random word-aligned placement; regions chosen not to overlap.
    const bool l2_to_tcdm = rng.uniform(0, 1) == 0;
    const Addr src = (l2_to_tcdm ? cluster::kL2Base : cluster::kTcdmBase) +
                     static_cast<Addr>(rng.uniform(0, 1024)) * 4;
    const Addr dst = (l2_to_tcdm ? cluster::kTcdmBase : cluster::kL2Base) +
                     static_cast<Addr>(rng.uniform(0, 1024)) * 4;
    std::vector<u8> payload(len);
    for (auto& b : payload) b = static_cast<u8>(rng.next_u32());
    for (u32 i = 0; i < len; ++i) {
      cl.bus().debug_store(src + i, 1, payload[i]);
    }
    cl.dma().enqueue(src, dst, len);
    u64 guard = 0;
    while (!cl.dma().idle()) {
      cl.step();
      ASSERT_LT(++guard, 1u << 20);
    }
    for (u32 i = 0; i < len; ++i) {
      ASSERT_EQ(cl.bus().debug_load(dst + i, 1, false), payload[i])
          << "trial " << trial << " byte " << i;
    }
    EXPECT_EQ(cl.dma().stats().bytes_moved, len);
  }
}

TEST(DmaFuzz, ManyQueuedTransfersCompleteInOrder) {
  Rng rng(0xD0B);
  Cluster cl;
  // Chain: region0 -> region1 -> ... -> region5; only correct ordering
  // propagates the pattern to the last region.
  const u32 len = 512;
  std::vector<u8> payload(len);
  for (auto& b : payload) b = static_cast<u8>(rng.next_u32());
  for (u32 i = 0; i < len; ++i) {
    cl.bus().debug_store(cluster::kL2Base + i, 1, payload[i]);
  }
  Addr prev = cluster::kL2Base;
  for (u32 hop = 1; hop <= 5; ++hop) {
    const Addr next = cluster::kTcdmBase + hop * 0x800;
    cl.dma().enqueue(prev, next, len);
    prev = next;
  }
  while (!cl.dma().idle()) cl.step();
  for (u32 i = 0; i < len; ++i) {
    ASSERT_EQ(cl.bus().debug_load(prev + i, 1, false), payload[i]);
  }
  EXPECT_EQ(cl.dma().stats().transfers_completed, 5u);
}

TEST(DmaFuzz, ContentionNeverCorruptsData) {
  // All four cores hammer the TCDM while the DMA copies through it; the
  // copy must still be exact (only slower).
  using codegen::Builder;
  using isa::Opcode;
  Rng rng(0xD0C);
  Builder bld(core::or10n_config().features);
  bld.li(2, cluster::kTcdmBase + 0x7000);  // away from the copy windows
  bld.li(4, 2000);
  bld.loop(4, 10, [&] {
    bld.emit(Opcode::kLw, 5, 2, 0, 0);
    bld.emit(Opcode::kSw, 5, 2, 0, 4);
  });
  bld.halt();

  Cluster cl;
  cl.load_program(bld.finalize());
  const u32 len = 2048;
  std::vector<u8> payload(len);
  for (auto& b : payload) b = static_cast<u8>(rng.next_u32());
  for (u32 i = 0; i < len; ++i) {
    cl.bus().debug_store(cluster::kL2Base + i, 1, payload[i]);
  }
  cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase, len);
  cl.run();
  for (u32 i = 0; i < len; ++i) {
    ASSERT_EQ(cl.bus().debug_load(cluster::kTcdmBase + i, 1, false),
              payload[i]);
  }
}

}  // namespace
}  // namespace ulp
