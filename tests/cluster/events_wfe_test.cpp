// WFE / SEV interplay on the cluster: producer-consumer handshakes through
// the event unit, the pattern the DMA-wait path and the runtime rely on.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using codegen::Builder;
using isa::Opcode;

TEST(ClusterEvents, WfeWokenBySev) {
  // Core 1 sleeps on WFE in a flag-check loop; core 0 computes a value,
  // publishes it, then SEVs. Core 1 must observe the published value.
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto core1 = bld.make_label();
  const auto other = bld.make_label();
  bld.li(10, cluster::kTcdmBase);  // flag address
  const auto c1 = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, c1);
  // --- core 0: long computation, publish, SEV.
  bld.li(2, 5000);
  bld.loop(2, 11, [&] { bld.nop(); });
  bld.li(3, 0xBEEF);
  bld.emit(Opcode::kSw, 3, 10, 0, 4);   // value
  bld.li(3, 1);
  bld.emit(Opcode::kSw, 3, 10, 0, 0);   // flag
  bld.emit(Opcode::kSev, 0, 0, 0, 0);
  bld.eoc();
  bld.bind(c1);
  bld.li(2, 1);
  bld.branch(Opcode::kBne, 1, 2, other);
  // --- core 1: wfe until the flag is set, then read the value.
  const auto wait = bld.make_label();
  bld.bind(wait);
  bld.emit(Opcode::kLw, 4, 10, 0, 0);
  bld.branch(Opcode::kBne, 4, codegen::zero, core1);
  bld.emit(Opcode::kWfe);
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait);
  bld.bind(core1);
  bld.emit(Opcode::kLw, 5, 10, 0, 4);
  bld.emit(Opcode::kSw, 5, 10, 0, 8);  // re-publish as proof of observation
  bld.halt();
  bld.bind(other);
  bld.halt();

  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + 8, 4, false), 0xBEEFu);
  // Core 1 really slept: thousands of clock-gated cycles, not busy-spins.
  EXPECT_GT(cl.stats().cores[1].sleep_cycles, 1000u);
}

TEST(ClusterEvents, DmaCompletionWakesWfeSleeper) {
  // Core 0 programs a DMA transfer and waits with WFE instead of polling:
  // the completion event must wake it.
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto other = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, other);
  bld.li(20, cluster::kL2Base);
  bld.li(21, cluster::kTcdmBase);
  bld.li(22, 4096);
  bld.dma_start(25, 20, 21, 22);
  const auto wait = bld.make_label();
  bld.bind(wait);
  bld.emit(Opcode::kLw, 26, 25, 0, 0x10);  // STATUS
  const auto done = bld.make_label();
  bld.branch(Opcode::kBeq, 26, codegen::zero, done);
  bld.emit(Opcode::kWfe);
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait);
  bld.bind(done);
  bld.eoc();
  bld.bind(other);
  bld.halt();

  Cluster cl;
  cl.load_program(bld.finalize());
  cl.bus().debug_store(cluster::kL2Base, 4, 0x12AB34CD);
  cl.run();
  EXPECT_TRUE(cl.events().eoc());
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase, 4, false), 0x12AB34CDu);
  // The waiting core slept through most of the ~1k-cycle transfer.
  EXPECT_GT(cl.stats().cores[0].sleep_cycles, 500u);
}

// dma_wait_wfe inside a hardware loop() body: the wait's exit branch must
// not land on the first instruction after the loop body — a taken branch
// bypasses the sequential loop-back check and would abandon the loop after
// one iteration (the helper pads its exit with a nop for exactly this).
TEST(ClusterEvents, DmaWaitWfeInsideHardwareLoopRunsAllRounds) {
  constexpr u32 kRounds = 6;
  constexpr u32 kBytes = 512;
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto others = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, others);
  bld.li(20, cluster::kL2Base);
  bld.li(21, cluster::kTcdmBase);
  bld.li(22, kBytes);
  bld.li(12, 0);  // completed-round counter
  bld.li(4, kRounds);
  bld.loop(4, 11, [&] {
    bld.dma_start(25, 20, 21, 22);
    bld.dma_wait_wfe(25, 26);
    bld.emit(Opcode::kAddi, 12, 12, 0, 1);
  });
  bld.li(13, cluster::kTcdmBase + 0x1000);
  bld.emit(Opcode::kSw, 12, 13, 0, 0);
  bld.eoc();
  bld.bind(others);
  bld.halt();

  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + 0x1000, 4, false),
            kRounds);
  EXPECT_EQ(cl.dma().stats().transfers_completed, kRounds);
  // The waits really slept (each 512-byte transfer is ~128 beats).
  EXPECT_GT(cl.stats().cores[0].sleep_cycles, kRounds * 100u);
}

}  // namespace
}  // namespace ulp
