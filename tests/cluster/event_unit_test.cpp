#include "cluster/event_unit.hpp"

#include <gtest/gtest.h>

namespace ulp::cluster {
namespace {

using core::WakeKind;

TEST(EventUnit, BarrierCompletesOnLastArrival) {
  EventUnit eu(4);
  EXPECT_FALSE(eu.barrier_arrive(0));
  EXPECT_FALSE(eu.barrier_arrive(2));
  EXPECT_FALSE(eu.barrier_arrive(1));
  EXPECT_TRUE(eu.barrier_arrive(3));  // last arriver proceeds directly
  // The three sleepers have a release pending; the last one does not.
  EXPECT_TRUE(eu.check_wake(0, WakeKind::kBarrier));
  EXPECT_TRUE(eu.check_wake(1, WakeKind::kBarrier));
  EXPECT_TRUE(eu.check_wake(2, WakeKind::kBarrier));
  EXPECT_FALSE(eu.check_wake(3, WakeKind::kBarrier));
}

TEST(EventUnit, CheckWakeConsumes) {
  EventUnit eu(2);
  EXPECT_FALSE(eu.barrier_arrive(0));
  EXPECT_TRUE(eu.barrier_arrive(1));
  EXPECT_TRUE(eu.check_wake(0, WakeKind::kBarrier));
  EXPECT_FALSE(eu.check_wake(0, WakeKind::kBarrier));  // consumed
}

TEST(EventUnit, BarrierReusableAcrossRounds) {
  EventUnit eu(2);
  for (int round = 0; round < 5; ++round) {
    EXPECT_FALSE(eu.barrier_arrive(0)) << round;
    EXPECT_TRUE(eu.barrier_arrive(1)) << round;
    EXPECT_TRUE(eu.check_wake(0, WakeKind::kBarrier)) << round;
  }
  EXPECT_EQ(eu.barriers_completed(), 5u);
}

TEST(EventUnit, DoubleArrivalIsAProgrammingError) {
  EventUnit eu(4);
  EXPECT_FALSE(eu.barrier_arrive(0));
  EXPECT_THROW((void)eu.barrier_arrive(0), SimError);
}

TEST(EventUnit, EventsAreSeparateFromBarrierReleases) {
  EventUnit eu(4);
  eu.send_event(0);
  // An event must never release a barrier sleeper...
  EXPECT_FALSE(eu.check_wake(1, WakeKind::kBarrier));
  // ...but does wake a WFE sleeper.
  EXPECT_TRUE(eu.check_wake(1, WakeKind::kEvent));
  EXPECT_FALSE(eu.check_wake(1, WakeKind::kEvent));  // consumed
}

TEST(EventUnit, EventsBroadcastToAllCores) {
  EventUnit eu(4);
  eu.send_event(7);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_TRUE(eu.check_wake(i, WakeKind::kEvent)) << i;
  }
}

TEST(EventUnit, EocLatchesAndClears) {
  EventUnit eu(4);
  EXPECT_FALSE(eu.eoc());
  eu.signal_eoc(3);
  EXPECT_TRUE(eu.eoc());
  EXPECT_EQ(eu.eoc_flag(), 3u);
  eu.clear_eoc();
  EXPECT_FALSE(eu.eoc());
}

TEST(EventUnit, RejectsBadCoreIds) {
  EventUnit eu(2);
  EXPECT_THROW((void)eu.barrier_arrive(2), SimError);
  EXPECT_THROW((void)eu.check_wake(5, WakeKind::kEvent), SimError);
}

}  // namespace
}  // namespace ulp::cluster
