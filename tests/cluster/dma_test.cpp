#include "dma/dma.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "common/rng.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using codegen::Builder;
using isa::Opcode;

TEST(Dma, MovesBytesExactlyL2ToTcdm) {
  Cluster cl;
  Rng rng(99);
  std::vector<u8> payload(1021);  // odd size: exercises 4/2/1-byte beats
  for (auto& b : payload) b = static_cast<u8>(rng.next_u32());
  for (size_t i = 0; i < payload.size(); ++i) {
    cl.bus().debug_store(cluster::kL2Base + static_cast<Addr>(i), 1,
                         payload[i]);
  }
  cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase,
                   static_cast<u32>(payload.size()));
  u64 guard = 0;
  while (!cl.dma().idle()) {
    cl.step();
    ASSERT_LT(++guard, 100000u);
  }
  for (size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + static_cast<Addr>(i),
                                  1, false),
              payload[i])
        << "byte " << i;
  }
  EXPECT_EQ(cl.dma().stats().bytes_moved, payload.size());
  EXPECT_EQ(cl.dma().stats().transfers_completed, 1u);
}

TEST(Dma, ThroughputIsOneWordPerCycleWithinTcdm) {
  Cluster cl;
  // Destination offset by one word so source and destination of each beat
  // land in different banks (0x1000 would alias onto the same bank and
  // honestly halve throughput).
  cl.dma().enqueue(cluster::kTcdmBase, cluster::kTcdmBase + 0x1004, 4096);
  u64 cycles = 0;
  while (!cl.dma().idle()) {
    cl.step();
    ++cycles;
    ASSERT_LT(cycles, 100000u);
  }
  // 1024 word beats, one per cycle (no competing masters).
  EXPECT_LE(cycles, 1024u + 8u);
}

TEST(Dma, QueueedTransfersRunInOrder) {
  Cluster cl;
  cl.bus().debug_store(cluster::kL2Base, 4, 0x11111111);
  // Transfer 1 writes the word; transfer 2 copies it onward.
  cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase, 4);
  cl.dma().enqueue(cluster::kTcdmBase, cluster::kTcdmBase + 8, 4);
  while (!cl.dma().idle()) cl.step();
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + 8, 4, false),
            0x11111111u);
  EXPECT_EQ(cl.dma().stats().transfers_completed, 2u);
}

TEST(Dma, RejectsMisalignedAndOverflow) {
  Cluster cl;
  EXPECT_THROW(cl.dma().enqueue(cluster::kL2Base + 1, cluster::kTcdmBase, 8),
               SimError);
  EXPECT_THROW(cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase + 2, 8),
               SimError);
  for (int i = 0; i < 8; ++i) {
    cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase, 4);
  }
  EXPECT_THROW(cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase, 4),
               SimError);
}

TEST(Dma, ZeroLengthIsNoOp) {
  Cluster cl;
  cl.dma().enqueue(cluster::kL2Base, cluster::kTcdmBase, 0);
  EXPECT_TRUE(cl.dma().idle());
}

// A core programs the DMA through its memory-mapped registers and spins on
// STATUS; the copied data must be visible to the core afterwards.
TEST(Dma, CoreProgrammedTransfer) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto others = bld.make_label();
  bld.branch(Opcode::kBne, 1, 0, others);
  bld.li(20, cluster::kL2Base);        // src
  bld.li(21, cluster::kTcdmBase);      // dst
  bld.li(22, 64);                      // len
  bld.dma_start(/*base=*/25, 20, 21, 22);
  bld.dma_wait(/*base=*/25, /*tmp=*/26);
  bld.li(2, cluster::kTcdmBase);
  bld.emit(Opcode::kLw, 3, 2, 0, 0);   // first copied word
  bld.eoc();
  bld.bind(others);
  bld.halt();

  Cluster cl;
  auto prog = bld.finalize();
  cl.load_program(prog);
  cl.bus().debug_store(cluster::kL2Base, 4, 0x13572468);
  cl.run();
  EXPECT_EQ(cl.core(0).reg(3), 0x13572468u);
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase, 4, false), 0x13572468u);
}

TEST(Dma, ContendsWithCoresForBanks) {
  // Cores hammer bank 0 while the DMA streams through all banks; both make
  // progress and total DMA busy time exceeds the uncontended minimum.
  Builder bld(core::or10n_config().features);
  bld.li(2, cluster::kTcdmBase);
  bld.li(4, 512);
  bld.loop(4, 10, [&] { bld.emit(Opcode::kLw, 5, 2, 0, 0); });
  bld.halt();
  Cluster cl;
  cl.load_program(bld.finalize());
  cl.dma().enqueue(cluster::kTcdmBase, cluster::kTcdmBase + 0x2000, 2048);
  cl.run();
  EXPECT_TRUE(cl.dma().idle());
  EXPECT_GT(cl.dma().stats().stall_cycles, 0u);
}

}  // namespace
}  // namespace ulp
