#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "codegen/builder.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using cluster::ClusterParams;
using codegen::Builder;
using isa::Opcode;

// SPMD program: each core writes its id to TCDM[4*id], hits a barrier, then
// core 0 sums the slots and signals EOC. Other cores halt after the barrier.
isa::Program spmd_ids_program(const core::CoreFeatures& f) {
  Builder bld(f);
  bld.csr_coreid(1);
  bld.li(2, cluster::kTcdmBase);
  bld.emit(Opcode::kSlli, 3, 1, 0, 2);
  bld.emit(Opcode::kAdd, 2, 2, 3);
  bld.emit(Opcode::kSw, 1, 2, 0, 0);
  bld.barrier();
  const auto not_zero = bld.make_label();
  bld.branch(Opcode::kBne, 1, 0, not_zero);
  // Core 0: sum the four slots into TCDM[16].
  bld.li(4, cluster::kTcdmBase);
  bld.li(5, 0);
  bld.li(6, 4);
  bld.loop(6, 10, [&] {
    bld.lw_pi(7, 4, 4);
    bld.emit(Opcode::kAdd, 5, 5, 7);
  });
  bld.li(4, cluster::kTcdmBase + 16);
  bld.emit(Opcode::kSw, 5, 4, 0, 0);
  bld.eoc();
  bld.bind(not_zero);
  bld.halt();
  return bld.finalize();
}

TEST(Cluster, SpmdBarrierAndEoc) {
  Cluster cl;
  cl.load_program(spmd_ids_program(cl.params().core_config.features));
  cl.run();
  EXPECT_TRUE(cl.events().eoc());
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + 16, 4, false),
            0u + 1 + 2 + 3);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + 4 * i, 4, false), i);
  }
}

TEST(Cluster, BarrierSleepIsClockGated) {
  // Cores 1..3 arrive at the barrier long before core 0 (which spins on a
  // long divide chain first); their sleep cycles must be visible.
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto go = bld.make_label();
  bld.branch(Opcode::kBne, 1, 0, go);
  bld.li(2, 1000);
  bld.li(3, 3);
  bld.loop(2, 10, [&] { bld.emit(Opcode::kDivu, 4, 2, 3); });
  bld.bind(go);
  bld.barrier();
  bld.halt();
  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  const auto stats = cl.stats();
  const u64 s1 = stats.cores[1].sleep_cycles;
  const u64 s2 = stats.cores[2].sleep_cycles;
  // Allowed divergence: stepping order plus a couple of shared-I$ cold
  // misses (whichever core touches a line first pays the refill).
  EXPECT_LE(s1 > s2 ? s1 - s2 : s2 - s1, 20u);
  EXPECT_GT(stats.cores[1].sleep_cycles, 1000u);
  EXPECT_LT(stats.cores[0].sleep_cycles, 10u);
}

TEST(Cluster, BarriersCount) {
  Builder bld(core::or10n_config().features);
  bld.barrier();
  bld.barrier();
  bld.barrier();
  bld.halt();
  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  EXPECT_EQ(cl.events().barriers_completed(), 3u);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(cl.stats().cores[i].barriers, 3u);
  }
}

TEST(Cluster, TcdmContentionSlowsSameBankAccess) {
  // All four cores hammer the same TCDM word vs. distinct banks.
  auto hammer = [](bool same_bank) {
    Builder bld(core::or10n_config().features);
    bld.csr_coreid(1);
    bld.li(2, cluster::kTcdmBase);
    if (!same_bank) {
      bld.emit(Opcode::kSlli, 3, 1, 0, 2);  // 4-byte stride: distinct banks
      bld.emit(Opcode::kAdd, 2, 2, 3);
    }
    bld.li(4, 256);
    bld.loop(4, 10, [&] { bld.emit(Opcode::kLw, 5, 2, 0, 0); });
    bld.halt();
    Cluster cl;
    cl.load_program(bld.finalize());
    return cl.run();
  };
  const u64 contended = hammer(true);
  const u64 spread = hammer(false);
  // Four cores on one bank serialize ~4x on the loads.
  EXPECT_GT(contended, spread + 256);
}

TEST(Cluster, RotatingArbitrationIsFair) {
  // Under permanent same-bank contention no core should starve.
  Builder bld(core::or10n_config().features);
  bld.li(2, cluster::kTcdmBase);
  bld.li(4, 64);
  bld.loop(4, 10, [&] { bld.emit(Opcode::kLw, 5, 2, 0, 0); });
  bld.halt();
  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  const auto stats = cl.stats();
  const u64 c0 = stats.cores[0].stall_mem;
  for (u32 i = 1; i < 4; ++i) {
    const u64 ci = stats.cores[i].stall_mem;
    EXPECT_LT(ci > c0 ? ci - c0 : c0 - ci, 16u)
        << "core " << i << " stalls " << ci << " vs core0 " << c0;
  }
}

TEST(Cluster, IcacheColdMissesCountedOnce) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 100);
  bld.loop(1, 10, [&] { bld.nop(); });
  bld.halt();
  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  const auto stats = cl.stats();
  // Shared I$: each line missed at most once despite 4 cores and 100 trips.
  const u64 lines = (cl.params().icache_line_instrs - 1 + 6) /
                        cl.params().icache_line_instrs + 1;
  EXPECT_LE(stats.icache_misses, lines + 2);
}

TEST(Cluster, LoadProgramResetsState) {
  Builder bld(core::or10n_config().features);
  bld.eoc();
  Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  EXPECT_TRUE(cl.events().eoc());

  Builder bld2(core::or10n_config().features);
  bld2.halt();
  cl.load_program(bld2.finalize());
  EXPECT_FALSE(cl.events().eoc());
  EXPECT_EQ(cl.cycles(), 0u);
  cl.run();
  EXPECT_FALSE(cl.events().eoc());
}

TEST(Cluster, DataSegmentsLoadIntoTcdmAndL2) {
  Builder bld(core::or10n_config().features);
  bld.halt();
  bld.add_data(cluster::kTcdmBase + 8, {0xAA, 0xBB});
  bld.add_data(cluster::kL2Base + 16, {0x01, 0x02, 0x03, 0x04});
  Cluster cl;
  cl.load_program(bld.finalize());
  EXPECT_EQ(cl.bus().debug_load(cluster::kTcdmBase + 8, 2, false), 0xBBAAu);
  EXPECT_EQ(cl.bus().debug_load(cluster::kL2Base + 16, 4, false),
            0x04030201u);
}

}  // namespace
}  // namespace ulp
