// Shared helpers for unit tests: a single-core harness with a flat memory,
// convenient for ISA/core semantics tests that don't need the full cluster.
#pragma once

#include <map>

#include "core/core.hpp"
#include "mem/bus.hpp"

namespace ulp::test {

struct SingleCoreRun {
  explicit SingleCoreRun(core::CoreConfig cfg = core::or10n_config(),
                         Addr mem_base = 0, size_t mem_size = 64 * 1024)
      : sram(mem_base, mem_size),
        bus(&sram, /*latency=*/1),
        core(0, 1, std::move(cfg), &bus) {}

  /// Sets registers, runs the program to halt, returns cycle count.
  u64 run(const isa::Program& prog,
          const std::map<u32, u32>& initial_regs = {}) {
    program = prog;
    core.reset(&program);
    for (const auto& [idx, val] : initial_regs) core.set_reg(idx, val);
    core.run_to_halt(50'000'000);
    return core.perf().cycles;
  }

  mem::Sram sram;
  mem::SimpleBus bus;
  core::Core core;
  isa::Program program;
};

}  // namespace ulp::test
