// Unit tests of the span/instant/counter recorder behind every
// instrumented component.
#include "trace/event_trace.hpp"

#include <gtest/gtest.h>

namespace ulp::trace {
namespace {

using EventKind = EventTrace::EventKind;

TEST(EventTrace, TracksCarryNameRateAndOrder) {
  EventTrace t;
  const auto host = t.add_track("host.mcu", 16e6, 0);
  const auto accel = t.add_track("cluster.core0", 16e6, 100);
  ASSERT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.tracks()[host].name, "host.mcu");
  EXPECT_DOUBLE_EQ(t.tracks()[accel].ticks_per_second, 16e6);
  EXPECT_EQ(t.tracks()[accel].sort_index, 100);
  EXPECT_TRUE(t.empty());
}

TEST(EventTrace, SpanBeginEndRecordsDuration) {
  EventTrace t;
  const auto tr = t.add_track("t");
  t.begin(tr, "work", 10, {{"bytes", 64.0}});
  t.end(tr, 35);
  ASSERT_EQ(t.num_events(), 1u);
  const auto& e = t.events()[0];
  EXPECT_EQ(e.kind, EventKind::kSpan);
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.begin_tick, 10u);
  EXPECT_EQ(e.end_tick, 35u);
  EXPECT_EQ(e.duration_ticks(), 25u);
  EXPECT_FALSE(e.open);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].key, "bytes");
  EXPECT_DOUBLE_EQ(e.args[0].value, 64.0);
}

TEST(EventTrace, SpansNestLifoWithDepth) {
  EventTrace t;
  const auto tr = t.add_track("t");
  t.begin(tr, "outer", 0);
  t.begin(tr, "inner", 5);
  t.end(tr, 8);   // closes inner
  t.end(tr, 20);  // closes outer
  const auto outer = t.spans_named(tr, "outer");
  const auto inner = t.spans_named(tr, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0]->depth, 0u);
  EXPECT_EQ(inner[0]->depth, 1u);
  EXPECT_EQ(outer[0]->duration_ticks(), 20u);
  EXPECT_EQ(inner[0]->duration_ticks(), 3u);
}

TEST(EventTrace, TracksNestIndependently) {
  EventTrace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  t.begin(a, "on_a", 0);
  t.begin(b, "on_b", 2);
  t.end(a, 4);  // must close on_a, not on_b
  t.end(b, 9);
  EXPECT_EQ(t.total_span_ticks(a, "on_a"), 4u);
  EXPECT_EQ(t.total_span_ticks(b, "on_b"), 7u);
}

TEST(EventTrace, CompleteSpansAndTotals) {
  EventTrace t;
  const auto tr = t.add_track("t");
  t.complete(tr, "phase", 0, 100);
  t.complete(tr, "phase", 150, 50);
  t.complete(tr, "other", 90, 10);
  EXPECT_EQ(t.spans_named(tr, "phase").size(), 2u);
  EXPECT_EQ(t.total_span_ticks(tr, "phase"), 150u);
  EXPECT_EQ(t.total_span_ticks(tr, "other"), 10u);
  EXPECT_EQ(t.total_span_ticks(tr, "absent"), 0u);
}

TEST(EventTrace, InstantAndCounterEvents) {
  EventTrace t;
  const auto tr = t.add_track("t");
  t.instant(tr, "eoc", 42, {{"core", 1.0}});
  t.counter(tr, "conflicts", 43, 7.0);
  ASSERT_EQ(t.num_events(), 2u);
  EXPECT_EQ(t.events()[0].kind, EventKind::kInstant);
  EXPECT_EQ(t.events()[0].begin_tick, 42u);
  EXPECT_EQ(t.events()[1].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(t.events()[1].value, 7.0);
}

TEST(EventTrace, CloseOpenSpansUsesNewestTickOnTrack) {
  EventTrace t;
  const auto tr = t.add_track("t");
  t.begin(tr, "left_open", 10);
  t.instant(tr, "marker", 90);  // newest activity on the track
  t.close_open_spans();
  const auto spans = t.spans_named(tr, "left_open");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0]->end_tick, 90u);
}

TEST(EventTrace, PerTrackCloseLeavesOtherTracksAlone) {
  EventTrace t;
  const auto a = t.add_track("a");
  const auto b = t.add_track("b");
  t.begin(a, "sa", 0);
  t.begin(b, "sb", 0);
  t.close_open_spans(a);
  EXPECT_FALSE(t.events()[0].open);  // sa closed
  EXPECT_TRUE(t.events()[1].open);   // sb still in flight
  t.end(b, 5);                       // and still properly closable
  EXPECT_EQ(t.total_span_ticks(b, "sb"), 5u);
}

TEST(EventTrace, RejectsMisuse) {
  EventTrace t;
  const auto tr = t.add_track("t");
  EXPECT_THROW(t.end(tr, 0), SimError);  // end without begin
  t.begin(tr, "s", 10);
  EXPECT_THROW(t.end(tr, 9), SimError);  // time moving backwards
  EXPECT_THROW(t.begin(99, "s", 0), SimError);  // unknown track
  EXPECT_THROW(t.instant(99, "s", 0), SimError);
}

}  // namespace
}  // namespace ulp::trace
