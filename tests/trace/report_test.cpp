#include "trace/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "codegen/builder.hpp"

namespace ulp::trace {
namespace {

TEST(FormatStats, ContainsEveryComponent) {
  using codegen::Builder;
  Builder bld(core::or10n_config().features);
  bld.li(1, 100);
  bld.loop(1, 10, [&] { bld.nop(); });
  bld.barrier();
  bld.halt();
  cluster::Cluster cl;
  cl.load_program(bld.finalize());
  cl.run();
  const std::string s = format_stats(cl.stats());
  for (const char* token :
       {"cluster:", "core0:", "core3:", "tcdm:", "dma:", "i$:", "sleep"}) {
    EXPECT_NE(s.find(token), std::string::npos) << token;
  }
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "ulp_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    EXPECT_TRUE(csv.row({1, 2.5, 3}).ok());
    EXPECT_TRUE(csv.row({4, 5, 6.25}).ok());
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,3");
  std::getline(in, line);
  EXPECT_EQ(line, "4,5,6.25");
  std::remove(path.c_str());
}

TEST(CsvWriter, WritesStringCellsWithQuoting) {
  const std::string path = ::testing::TempDir() + "ulp_csv_test_str.csv";
  {
    CsvWriter csv(path, {"kernel", "faults", "cycles"});
    EXPECT_TRUE(csv.row({"matmul", "seed=7,flip=1e-4", "123"}).ok());
    EXPECT_FALSE(csv.row(std::vector<std::string>{"too", "few"}).ok());
    EXPECT_EQ(csv.rows_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  // The fault spec contains a comma, so RFC 4180 quoting kicks in.
  EXPECT_EQ(line, "matmul,\"seed=7,flip=1e-4\",123");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsArityMismatchWithoutWriting) {
  const std::string path = ::testing::TempDir() + "ulp_csv_test2.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    const Status narrow = csv.row(std::vector<double>{1});
    EXPECT_FALSE(narrow.ok());
    EXPECT_NE(narrow.message().find("arity"), std::string::npos);
    EXPECT_FALSE(csv.row(std::vector<double>{1, 2, 3}).ok());
    EXPECT_THROW(csv.row(std::vector<double>{1}).or_throw(), SimError);
    EXPECT_EQ(csv.rows_written(), 0u);
    EXPECT_TRUE(csv.row(std::vector<double>{7, 8}).ok());  // writer still usable
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "7,8");  // rejected rows left no partial output
  std::remove(path.c_str());
}

TEST(CsvWriter, QuotesHeaderFieldsPerRfc4180) {
  EXPECT_EQ(CsvWriter::escape_field("plain_name"), "plain_name");
  EXPECT_EQ(CsvWriter::escape_field("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape_field("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape_field("two\nlines"), "\"two\nlines\"");

  const std::string path = ::testing::TempDir() + "ulp_csv_test3.csv";
  {
    CsvWriter csv(path, {"cycles", "energy [J], total", "say \"hi\""});
    EXPECT_TRUE(csv.row(std::vector<double>{1, 2, 3}).ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "cycles,\"energy [J], total\",\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), SimError);
}

TEST(CsvPathFromArgs, ParsesAndDefaults) {
  const char* argv1[] = {"bench", "--csv", "out.csv"};
  EXPECT_EQ(csv_path_from_args(3, const_cast<char**>(argv1)), "out.csv");
  const char* argv2[] = {"bench"};
  EXPECT_EQ(csv_path_from_args(1, const_cast<char**>(argv2)), "");
  const char* argv3[] = {"bench", "--csv"};  // dangling flag: ignored
  EXPECT_EQ(csv_path_from_args(2, const_cast<char**>(argv3)), "");
}

}  // namespace
}  // namespace ulp::trace
