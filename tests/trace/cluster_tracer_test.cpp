// Dedicated ClusterTracer tests (VCD waveform tracing of a cluster run)
// plus the span-based cluster instrumentation behind Cluster::attach_trace.
#include "trace/cluster_tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "trace/event_trace.hpp"
#include "trace/metrics.hpp"

namespace ulp::trace {
namespace {

isa::Program barrier_program(u32 loop_len = 50) {
  codegen::Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.li(2, loop_len);
  bld.loop(2, 10, [&] { bld.nop(); });
  bld.barrier();
  bld.eoc();
  return bld.finalize();
}

TEST(ClusterTracer, TracesABarrierProgram) {
  cluster::Cluster cl;
  cl.load_program(barrier_program());

  std::ostringstream out;
  ClusterTracer tracer(cl, out);
  const u64 cycles = tracer.run_traced();
  EXPECT_GT(cycles, 50u);

  const std::string s = out.str();
  // All four cores and the shared blocks are declared.
  for (const char* scope : {"core0", "core1", "core2", "core3", "tcdm",
                            "dma"}) {
    EXPECT_NE(s.find(scope), std::string::npos) << scope;
  }
  // The EOC line eventually rises: a '1' change for the eoc signal exists.
  EXPECT_NE(s.find("eoc"), std::string::npos);
  // Value-change sections exist with increasing timestamps.
  const size_t t1 = s.find("#1\n");
  EXPECT_NE(t1, std::string::npos);
}

TEST(ClusterTracer, SampleCountMatchesCycles) {
  codegen::Builder bld(core::or10n_config().features);
  bld.li(2, 10);
  bld.loop(2, 10, [&] { bld.nop(); });
  bld.halt();
  cluster::Cluster cl;
  cl.load_program(bld.finalize());
  std::ostringstream out;
  ClusterTracer tracer(cl, out);
  const u64 cycles = tracer.run_traced();
  // Last timestamp in the dump equals the final cycle count.
  const std::string s = out.str();
  const size_t last_hash = s.rfind('#');
  ASSERT_NE(last_hash, std::string::npos);
  const u64 last_time = std::stoull(s.substr(last_hash + 1));
  EXPECT_EQ(last_time, cycles);
}

TEST(ClusterTracer, EveryCoreStateAppearsInTheDump) {
  // A barrier program exercises all three states: running, clock-gated
  // wait at the barrier (cores finish at different times since core 0
  // runs the csr/li prologue on behalf of everyone), halted at EOC.
  cluster::Cluster cl;
  cl.load_program(barrier_program(200));
  std::ostringstream out;
  ClusterTracer tracer(cl, out);
  (void)tracer.run_traced();
  const std::string s = out.str();
  // VCD encodes the 2-bit state as b1 (run), b10 (sleep), b0 (halt).
  EXPECT_NE(s.find("b1 "), std::string::npos);
  EXPECT_NE(s.find("b10 "), std::string::npos);
  EXPECT_NE(s.find("b0 "), std::string::npos);
}

TEST(ClusterEventTrace, RecordsRunWaitSpansBarriersAndHalt) {
  cluster::Cluster cl;
  EventTrace trace;
  MetricsRegistry metrics;
  cl.attach_trace({&trace, &metrics}, 1e9, "cl");
  cl.load_program(barrier_program());
  const u64 cycles = cl.run();
  trace.close_open_spans();

  ASSERT_EQ(trace.tracks().size(), 6u);  // 4 cores + sync + dma
  EXPECT_EQ(trace.tracks()[0].name, "cl.core0");
  EXPECT_EQ(trace.tracks()[4].name, "cl.sync");
  EXPECT_EQ(trace.tracks()[5].name, "cl.dma");

  size_t wait_spans = 0;
  for (EventTrace::TrackId t = 0; t < 4; ++t) {
    EXPECT_GE(trace.spans_named(t, "run").size(), 1u) << "core " << t;
    wait_spans += trace.spans_named(t, "wait").size();
    // No span outlives the run.
    for (const auto* e : trace.spans_named(t, "run")) {
      EXPECT_LE(e->end_tick, cycles);
    }
  }
  // All cores except the last barrier arriver clock-gate while waiting.
  EXPECT_GE(wait_spans, 3u);
  // The barrier instant landed on the sync track with its count.
  bool barrier_seen = false;
  for (const auto& e : trace.events()) {
    if (e.kind == EventTrace::EventKind::kInstant && e.name == "barrier") {
      barrier_seen = true;
      EXPECT_EQ(e.track, 4u);
    }
  }
  EXPECT_TRUE(barrier_seen);
  EXPECT_EQ(metrics.counter("cluster.barriers").value(), 1u);
  EXPECT_GE(metrics.histogram("cluster.wait_cycles").count(), 3u);
}

TEST(ClusterEventTrace, WaitSpanCyclesMatchCoreSleepStats) {
  cluster::Cluster cl;
  EventTrace trace;
  cl.attach_trace({&trace, nullptr}, 1e9, "cl");
  cl.load_program(barrier_program(100));
  (void)cl.run();
  trace.close_open_spans();
  const auto stats = cl.stats();
  for (EventTrace::TrackId t = 0; t < 4; ++t) {
    // A wait span opens at the end of the cycle that executed the gating
    // instruction (perf bills that cycle as active) and covers the gated
    // cycles after it: span ticks == sleep_cycles + one per episode.
    const u64 episodes = trace.spans_named(t, "wait").size();
    EXPECT_EQ(trace.total_span_ticks(t, "wait"),
              stats.cores[t].sleep_cycles + episodes)
        << "core " << t;
  }
}

TEST(ClusterEventTrace, ReloadRestartsCycleStampsSafely) {
  cluster::Cluster cl;
  EventTrace trace;
  cl.attach_trace({&trace, nullptr}, 1e9, "cl");
  cl.load_program(barrier_program(20));
  (void)cl.run();
  // Second run on the same cluster: stamps restart at 0; the tracer must
  // not emit a span that goes backwards in time.
  cl.load_program(barrier_program(30));
  (void)cl.run();
  trace.close_open_spans();
  for (const auto& e : trace.events()) {
    if (e.kind == EventTrace::EventKind::kSpan) {
      EXPECT_LE(e.begin_tick, e.end_tick);
    }
  }
  // Both runs contributed run spans to core 0's track.
  EXPECT_GE(trace.spans_named(0, "run").size(), 2u);
}

TEST(RetireHook, ObservesEveryInstruction) {
  using codegen::Builder;
  Builder bld(core::or10n_config().features);
  bld.li(1, 3);
  bld.loop(1, 10, [&] { bld.emit(isa::Opcode::kAddi, 2, 2, 0, 1); });
  bld.halt();
  const isa::Program prog = bld.finalize();

  mem::Sram sram(0, 1024);
  mem::SimpleBus bus(&sram, 1);
  core::Core cpu(0, 1, core::or10n_config(), &bus);
  cpu.reset(&prog);
  std::vector<u32> pcs;
  cpu.set_retire_hook(
      [&](u32 pc, const isa::Instr&) { pcs.push_back(pc); });
  cpu.run_to_halt();
  EXPECT_EQ(pcs.size(), cpu.perf().instrs);
  // The loop body pc (index 2: after li + lp.setup) retires three times.
  EXPECT_EQ(std::count(pcs.begin(), pcs.end(), 2u), 3);
}

}  // namespace
}  // namespace ulp::trace
