#include "trace/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ulp::trace {
namespace {

TEST(Vcd, HeaderDeclaresSignalsAndScopes) {
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.add_signal("top.sub", "sig_a", 1);
  vcd.add_signal("top", "bus_b", 8);
  vcd.begin_dump();
  const std::string s = out.str();
  EXPECT_NE(s.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(s.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(s.find("$scope module sub $end"), std::string::npos);
  EXPECT_NE(s.find("sig_a $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 8"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto a = vcd.add_signal("t", "a", 1);
  vcd.begin_dump();
  vcd.set(a, 1);
  vcd.tick(0);
  const size_t after_first = out.str().size();
  vcd.set(a, 1);  // unchanged
  vcd.tick(1);
  EXPECT_EQ(out.str().size(), after_first);  // no output for no change
  vcd.set(a, 0);
  vcd.tick(2);
  EXPECT_GT(out.str().size(), after_first);
  EXPECT_NE(out.str().find("#2"), std::string::npos);
}

TEST(Vcd, MultiBitBinaryFormat) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto b = vcd.add_signal("t", "b", 8);
  vcd.begin_dump();
  vcd.set(b, 0xA5);
  vcd.tick(3);
  EXPECT_NE(out.str().find("b10100101 "), std::string::npos);
}

TEST(Vcd, WidthMasksValue) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto b = vcd.add_signal("t", "b", 4);
  vcd.begin_dump();
  vcd.set(b, 0xFF);  // masked to 0xF
  vcd.tick(0);
  EXPECT_NE(out.str().find("b1111 "), std::string::npos);
  EXPECT_EQ(out.str().find("b11111111"), std::string::npos);
}

TEST(Vcd, RejectsMisuse) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto a = vcd.add_signal("t", "a", 1);
  EXPECT_THROW(vcd.tick(0), SimError);  // before begin_dump
  vcd.begin_dump();
  EXPECT_THROW((void)vcd.add_signal("t", "late", 1), SimError);
  vcd.set(a, 1);
  vcd.tick(5);
  vcd.set(a, 0);
  EXPECT_THROW(vcd.tick(5), SimError);  // non-increasing time
}

TEST(Vcd, IdentifiersAreUniqueAndPrintable) {
  std::ostringstream out;
  VcdWriter vcd(out);
  // More signals than the 94-character alphabet forces multi-char ids.
  for (int i = 0; i < 200; ++i) {
    vcd.add_signal("t", "s" + std::to_string(i), 1);
  }
  vcd.begin_dump();
  const std::string s = out.str();
  // Every declaration line is well-formed: "$var wire 1 <id> s<i> $end".
  size_t count = 0;
  size_t pos = 0;
  while ((pos = s.find("$var wire 1 ", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 200u);
}

}  // namespace
}  // namespace ulp::trace
