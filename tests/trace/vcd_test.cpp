#include "trace/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "trace/cluster_tracer.hpp"

namespace ulp::trace {
namespace {

TEST(Vcd, HeaderDeclaresSignalsAndScopes) {
  std::ostringstream out;
  VcdWriter vcd(out);
  vcd.add_signal("top.sub", "sig_a", 1);
  vcd.add_signal("top", "bus_b", 8);
  vcd.begin_dump();
  const std::string s = out.str();
  EXPECT_NE(s.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(s.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(s.find("$scope module sub $end"), std::string::npos);
  EXPECT_NE(s.find("sig_a $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 8"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto a = vcd.add_signal("t", "a", 1);
  vcd.begin_dump();
  vcd.set(a, 1);
  vcd.tick(0);
  const size_t after_first = out.str().size();
  vcd.set(a, 1);  // unchanged
  vcd.tick(1);
  EXPECT_EQ(out.str().size(), after_first);  // no output for no change
  vcd.set(a, 0);
  vcd.tick(2);
  EXPECT_GT(out.str().size(), after_first);
  EXPECT_NE(out.str().find("#2"), std::string::npos);
}

TEST(Vcd, MultiBitBinaryFormat) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto b = vcd.add_signal("t", "b", 8);
  vcd.begin_dump();
  vcd.set(b, 0xA5);
  vcd.tick(3);
  EXPECT_NE(out.str().find("b10100101 "), std::string::npos);
}

TEST(Vcd, WidthMasksValue) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto b = vcd.add_signal("t", "b", 4);
  vcd.begin_dump();
  vcd.set(b, 0xFF);  // masked to 0xF
  vcd.tick(0);
  EXPECT_NE(out.str().find("b1111 "), std::string::npos);
  EXPECT_EQ(out.str().find("b11111111"), std::string::npos);
}

TEST(Vcd, RejectsMisuse) {
  std::ostringstream out;
  VcdWriter vcd(out);
  const auto a = vcd.add_signal("t", "a", 1);
  EXPECT_THROW(vcd.tick(0), SimError);  // before begin_dump
  vcd.begin_dump();
  EXPECT_THROW((void)vcd.add_signal("t", "late", 1), SimError);
  vcd.set(a, 1);
  vcd.tick(5);
  vcd.set(a, 0);
  EXPECT_THROW(vcd.tick(5), SimError);  // non-increasing time
}

TEST(Vcd, IdentifiersAreUniqueAndPrintable) {
  std::ostringstream out;
  VcdWriter vcd(out);
  // More signals than the 94-character alphabet forces multi-char ids.
  for (int i = 0; i < 200; ++i) {
    vcd.add_signal("t", "s" + std::to_string(i), 1);
  }
  vcd.begin_dump();
  const std::string s = out.str();
  // Every declaration line is well-formed: "$var wire 1 <id> s<i> $end".
  size_t count = 0;
  size_t pos = 0;
  while ((pos = s.find("$var wire 1 ", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 200u);
}

TEST(ClusterTracer, TracesABarrierProgram) {
  using codegen::Builder;
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.li(2, 50);
  bld.loop(2, 10, [&] { bld.nop(); });
  bld.barrier();
  bld.eoc();
  cluster::Cluster cl;
  cl.load_program(bld.finalize());

  std::ostringstream out;
  ClusterTracer tracer(cl, out);
  const u64 cycles = tracer.run_traced();
  EXPECT_GT(cycles, 50u);

  const std::string s = out.str();
  // All four cores and the shared blocks are declared.
  for (const char* scope : {"core0", "core1", "core2", "core3", "tcdm",
                            "dma"}) {
    EXPECT_NE(s.find(scope), std::string::npos) << scope;
  }
  // The EOC line eventually rises: a '1' change for the eoc signal exists.
  EXPECT_NE(s.find("eoc"), std::string::npos);
  // Value-change sections exist with increasing timestamps.
  const size_t t1 = s.find("#1\n");
  EXPECT_NE(t1, std::string::npos);
}

TEST(ClusterTracer, SampleCountMatchesCycles) {
  using codegen::Builder;
  Builder bld(core::or10n_config().features);
  bld.li(2, 10);
  bld.loop(2, 10, [&] { bld.nop(); });
  bld.halt();
  cluster::Cluster cl;
  cl.load_program(bld.finalize());
  std::ostringstream out;
  ClusterTracer tracer(cl, out);
  const u64 cycles = tracer.run_traced();
  // Last timestamp in the dump equals the final cycle count.
  const std::string s = out.str();
  const size_t last_hash = s.rfind('#');
  ASSERT_NE(last_hash, std::string::npos);
  const u64 last_time = std::stoull(s.substr(last_hash + 1));
  EXPECT_EQ(last_time, cycles);
}

TEST(RetireHook, ObservesEveryInstruction) {
  using codegen::Builder;
  Builder bld(core::or10n_config().features);
  bld.li(1, 3);
  bld.loop(1, 10, [&] { bld.emit(isa::Opcode::kAddi, 2, 2, 0, 1); });
  bld.halt();
  const isa::Program prog = bld.finalize();

  mem::Sram sram(0, 1024);
  mem::SimpleBus bus(&sram, 1);
  core::Core cpu(0, 1, core::or10n_config(), &bus);
  cpu.reset(&prog);
  std::vector<u32> pcs;
  cpu.set_retire_hook(
      [&](u32 pc, const isa::Instr&) { pcs.push_back(pc); });
  cpu.run_to_halt();
  EXPECT_EQ(pcs.size(), cpu.perf().instrs);
  // The loop body pc (index 2: after li + lp.setup) retires three times.
  EXPECT_EQ(std::count(pcs.begin(), pcs.end(), 2u), 3);
}

}  // namespace
}  // namespace ulp::trace
