// Unit tests of the counter/gauge/histogram registry.
#include "trace/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ulp::trace {
namespace {

TEST(Counter, AccumulatesIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, KeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Histogram, BucketsAreLog2Ranges) {
  Histogram h;
  h.record(0);  // bucket 0: exactly zero
  h.record(1);  // bucket 1: [1, 2)
  h.record(2);  // bucket 2: [2, 4)
  h.record(3);
  h.record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);
  EXPECT_EQ(h.significant_buckets(), 12u);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.significant_buckets(), 0u);
  EXPECT_EQ(h.approx_quantile(0.5), 0u);
}

TEST(Histogram, QuantilesResolveToBucketUpperBounds) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);    // bucket 4: [8, 16)
  for (int i = 0; i < 10; ++i) h.record(5000);  // bucket 13: [4096, 8192)
  EXPECT_EQ(h.approx_quantile(0.5), 15u);    // within the 90% mass
  EXPECT_EQ(h.approx_quantile(0.99), 8191u);  // reaches the tail
}

TEST(Histogram, ExtremeSamplesDoNotOverflow) {
  Histogram h;
  const u64 big = std::numeric_limits<u64>::max();
  h.record(big);  // lands in the last bucket (index 64)
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.max(), big);
  // The top bucket has no finite power-of-two upper bound; the quantile
  // falls back to the observed max instead of shifting by 64 (UB).
  EXPECT_EQ(h.approx_quantile(1.0), big);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableRefs) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter& a = reg.counter("spi.transfers");
  Counter& b = reg.counter("spi.transfers");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("spi.transfers").value(), 3u);
  reg.histogram("spi.payload_bytes").record(128);
  reg.gauge("efficiency").set(0.9);
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
  EXPECT_EQ(reg.gauges().size(), 1u);
}

TEST(MetricsRegistry, RejectsNameReuseAcrossKinds) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.histogram("x"), SimError);
  EXPECT_THROW(reg.gauge("x"), SimError);
  reg.histogram("y");
  EXPECT_THROW(reg.counter("y"), SimError);
}

TEST(MetricsRegistry, FormatListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("runs").add(2);
  reg.gauge("speedup").set(3.5);
  reg.histogram("bytes").record(100);
  const std::string s = reg.format();
  EXPECT_NE(s.find("runs: 2"), std::string::npos);
  EXPECT_NE(s.find("speedup"), std::string::npos);
  EXPECT_NE(s.find("bytes"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace ulp::trace
