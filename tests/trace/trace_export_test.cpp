// Exporter tests: Chrome trace-event JSON structure and escaping, and the
// human-readable profile report.
#include "trace/trace_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_check.hpp"

namespace ulp::trace {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("spi.tx"), "spi.tx");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

EventTrace make_small_trace() {
  EventTrace t;
  // 16 MHz track: 32 ticks = 2 us.
  const auto host = t.add_track("host.mcu", 16e6, 0);
  const auto accel = t.add_track("cluster.core0", 8e6, 100);
  t.begin(host, "run", 16, {{"bytes", 12.0}});
  t.end(host, 48);
  t.instant(host, "eoc", 48);
  t.counter(accel, "conflicts", 8, 3.0);
  t.complete(accel, "compute", 0, 80);
  return t;
}

TEST(ChromeTrace, OutputIsValidJson) {
  EventTrace t = make_small_trace();
  std::ostringstream out;
  ASSERT_TRUE(write_chrome_trace(t, out).ok());
  const auto check = testing::check_json(out.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.objects, 4u);  // root + metadata + events
  EXPECT_GE(check.arrays, 1u);   // traceEvents
}

TEST(ChromeTrace, EmitsMetadataSpanInstantAndCounterRecords) {
  EventTrace t = make_small_trace();
  std::ostringstream out;
  ASSERT_TRUE(write_chrome_trace(t, out).ok());
  const std::string s = out.str();
  // Track naming metadata for both clock domains.
  EXPECT_NE(s.find("thread_name"), std::string::npos);
  EXPECT_NE(s.find("host.mcu"), std::string::npos);
  EXPECT_NE(s.find("cluster.core0"), std::string::npos);
  EXPECT_NE(s.find("thread_sort_index"), std::string::npos);
  // One of each record type.
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  // Span args survive the export.
  EXPECT_NE(s.find("\"bytes\":12"), std::string::npos);
}

TEST(ChromeTrace, TimestampsScaleByTrackTickRate) {
  EventTrace t = make_small_trace();
  std::ostringstream out;
  ASSERT_TRUE(write_chrome_trace(t, out).ok());
  const std::string s = out.str();
  // host.mcu: begin tick 16 at 16 MHz -> 1 us, 32 ticks -> 2 us duration.
  EXPECT_NE(s.find("\"ts\":1,"), std::string::npos);
  EXPECT_NE(s.find("\"dur\":2,"), std::string::npos);
  // cluster.core0: 80 ticks at 8 MHz -> 10 us duration.
  EXPECT_NE(s.find("\"dur\":10,"), std::string::npos);
}

TEST(ChromeTrace, ClosesOpenSpansBeforeExport) {
  EventTrace t;
  const auto tr = t.add_track("t");
  t.begin(tr, "never_ended", 5);
  t.instant(tr, "later", 100);
  std::ostringstream out;
  ASSERT_TRUE(write_chrome_trace(t, out).ok());
  const auto check = testing::check_json(out.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_NE(out.str().find("never_ended"), std::string::npos);
}

TEST(ChromeTrace, EscapesHostileNames) {
  EventTrace t;
  const auto tr = t.add_track("tr\"ack\\1");
  t.instant(tr, "name with \"quotes\"\nand newline", 0);
  std::ostringstream out;
  ASSERT_TRUE(write_chrome_trace(t, out).ok());
  const auto check = testing::check_json(out.str());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(ChromeTrace, FileExporterReportsUnwritablePath) {
  EventTrace t = make_small_trace();
  const Status s =
      write_chrome_trace_file(t, "/nonexistent_dir_zz/trace.json");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
}

TEST(ProfileReport, AggregatesSpansAndAppendsMetrics) {
  EventTrace t;
  const auto tr = t.add_track("offload@16MHz", 16e6, 10);
  t.complete(tr, "compute", 0, 1600);   // 100 us
  t.complete(tr, "compute", 2000, 1600);
  t.complete(tr, "input_xfer", 1600, 400);  // 25 us
  MetricsRegistry reg;
  reg.counter("offload.runs").add(2);
  const std::string s = profile_report(t, &reg);
  EXPECT_NE(s.find("offload@16MHz"), std::string::npos);
  EXPECT_NE(s.find("compute"), std::string::npos);
  EXPECT_NE(s.find("x2"), std::string::npos);  // aggregated count
  EXPECT_NE(s.find("input_xfer"), std::string::npos);
  EXPECT_NE(s.find("offload.runs: 2"), std::string::npos);
  // compute holds 3200 of 3600 busy ticks.
  EXPECT_NE(s.find("88.9%"), std::string::npos);
}

TEST(ProfileReport, NullMetricsAndEmptyTraceAreFine) {
  EventTrace t;
  const std::string s = profile_report(t, nullptr);
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace ulp::trace
