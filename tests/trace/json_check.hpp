// Minimal strict JSON parser for the export tests: validates syntax and
// counts structure, with no dependency beyond the standard library. This
// is a test oracle, not a JSON library — it accepts exactly the grammar of
// RFC 8259 (minus \uXXXX surrogate-pair pairing checks) and reports the
// first offending byte offset on failure.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace ulp::trace::testing {

struct JsonCheck {
  bool ok = false;
  std::string error;       // empty when ok
  size_t objects = 0;      // number of '{...}' values parsed
  size_t arrays = 0;       // number of '[...]' values parsed
  size_t strings = 0;      // number of string literals (keys included)
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonCheck run() {
    skip_ws();
    if (!value()) return fail();
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing bytes after top-level value");
    out_.ok = true;
    return out_;
  }

 private:
  JsonCheck fail(const char* why = "syntax error") {
    if (out_.error.empty()) {
      out_.error = std::string(why) + " at byte " + std::to_string(pos_);
    }
    out_.ok = false;
    return out_;
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  bool consume(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    ++out_.objects;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    ++out_.arrays;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        ++out_.strings;
        return true;
      }
      if (c < 0x20) return false;  // raw control character: must be escaped
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0)
              return false;
          }
          ++pos_;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const size_t start = pos_;
    consume('-');
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    if (!consume('0')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos_;
    }
    if (consume('.')) {
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!consume('+')) consume('-');
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos_;
    }
    return pos_ > start;
  }

  std::string_view s_;
  size_t pos_ = 0;
  JsonCheck out_;
};

inline JsonCheck check_json(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace ulp::trace::testing
