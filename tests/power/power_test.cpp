#include "power/pulp_power.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"
#include "common/units.hpp"
#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"

namespace ulp::power {
namespace {

TEST(PulpPowerModel, FmaxMonotonicInVdd) {
  PulpPowerModel pm;
  double prev = 0;
  for (double vdd = 0.5; vdd <= 1.0 + 1e-9; vdd += 0.01) {
    const double f = pm.fmax_hz(vdd);
    EXPECT_GT(f, prev) << "vdd=" << vdd;
    prev = f;
  }
}

TEST(PulpPowerModel, FmaxTablePointsExact) {
  PulpPowerModel pm;
  EXPECT_DOUBLE_EQ(pm.fmax_hz(0.5), mhz(16));
  EXPECT_DOUBLE_EQ(pm.fmax_hz(1.0), mhz(450));
  // Interpolated point lies strictly between its neighbours.
  EXPECT_GT(pm.fmax_hz(0.65), pm.fmax_hz(0.6));
  EXPECT_LT(pm.fmax_hz(0.65), pm.fmax_hz(0.7));
}

TEST(PulpPowerModel, RejectsOutOfRangeVdd) {
  PulpPowerModel pm;
  EXPECT_THROW((void)pm.fmax_hz(0.4), SimError);
  EXPECT_THROW((void)pm.fmax_hz(1.2), SimError);
}

TEST(PulpPowerModel, LeakageGrowsWithVdd) {
  PulpPowerModel pm;
  EXPECT_LT(pm.leakage_w(0.5), pm.leakage_w(0.8));
  EXPECT_LT(pm.leakage_w(0.8), pm.leakage_w(1.0));
}

TEST(PulpPowerModel, DynamicScalesLinearlyWithFrequency) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  const double p1 = pm.dynamic_w(chi, 0.8, mhz(100));
  const double p2 = pm.dynamic_w(chi, 0.8, mhz(200));
  EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
}

TEST(PulpPowerModel, DynamicScalesQuadraticallyWithVdd) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  const double p1 = pm.dynamic_w(chi, 0.5, mhz(10));
  const double p2 = pm.dynamic_w(chi, 1.0, mhz(10));
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(PulpPowerModel, IdleCoresCostLessThanRunning) {
  PulpPowerModel pm;
  ActivityFactors running;
  running.cores_run = 4;
  ActivityFactors idle;
  idle.cores_idle = 4;
  EXPECT_GT(pm.dynamic_w(running, 0.8, mhz(100)),
            5 * pm.dynamic_w(idle, 0.8, mhz(100)));
}

TEST(PulpPowerModel, Figure3AnchorReproduced) {
  // The paper's headline: ~304 GOPS/W peak at ~1.48 mW on matmul.
  PulpPowerModel pm;
  const auto cfg = core::or10n_config();
  const auto& info = kernels::all_kernels()[0];  // matmul (char)
  const u64 risc_ops = kernels::measure_risc_ops(info);
  const auto kc = info.factory(cfg.features, 4, kernels::Target::kCluster, 1);
  const auto run = kernels::run_on_cluster(kc, cfg, 4);
  const ActivityFactors chi = ActivityFactors::from_stats(run.stats);

  const OperatingPoint op{0.5, pm.fmax_hz(0.5)};
  const double watts = pm.total_w(chi, op);
  const double gops =
      static_cast<double>(risc_ops) / static_cast<double>(run.cycles) *
      op.freq_hz / 1e9;
  const double eff = gops / watts;
  EXPECT_NEAR(watts, mw(1.48), mw(0.15));
  EXPECT_NEAR(eff, 304.0, 25.0);
}

TEST(PulpPowerModel, MaxPerformancePointRespectsBudget) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  for (double budget : {mw(0.5), mw(2), mw(5), mw(10), mw(50)}) {
    const auto op = pm.max_performance_point(budget, chi);
    ASSERT_TRUE(op.has_value()) << budget;
    EXPECT_LE(pm.total_w(chi, *op), budget * 1.0001);
    // No headroom left unused: a 5% faster point must exceed the budget
    // (unless already at the absolute maximum).
    if (op->freq_hz < pm.fmax_hz(1.0) * 0.99) {
      OperatingPoint faster = *op;
      faster.vdd = std::min(1.0, faster.vdd + 0.02);
      faster.freq_hz = pm.fmax_hz(faster.vdd);
      EXPECT_GT(pm.total_w(chi, faster), budget * 0.999);
    }
  }
}

TEST(PulpPowerModel, MaxPerformancePointMonotonicInBudget) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  double prev = 0;
  for (double budget = mw(0.5); budget < mw(100); budget *= 1.5) {
    const auto op = pm.max_performance_point(budget, chi);
    ASSERT_TRUE(op.has_value());
    EXPECT_GE(op->freq_hz, prev);
    prev = op->freq_hz;
  }
}

TEST(PulpPowerModel, TinyBudgetIsInfeasible) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  EXPECT_FALSE(pm.max_performance_point(uw(50), chi).has_value());
}

TEST(PulpPowerModel, ForwardBiasTradesLeakageForFrequency) {
  PulpPowerModel pm;
  for (double vdd : {0.5, 0.7, 1.0}) {
    EXPECT_NEAR(pm.fmax_hz(vdd, BiasMode::kForwardBias) / pm.fmax_hz(vdd),
                PulpPowerModel::kFbbSpeedup, 1e-9);
    EXPECT_NEAR(pm.leakage_w(vdd, BiasMode::kForwardBias) / pm.leakage_w(vdd),
                PulpPowerModel::kFbbLeakageFactor, 1e-9);
  }
}

TEST(PulpPowerModel, BoostHelpsOnlyWithGenerousBudgets) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  // Tight budget: leakage-dominated, boost must not be selected.
  const auto tight = pm.max_performance_point(mw(0.6), chi, true);
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->bias, BiasMode::kNominal);
  // Generous budget: the bias point buys net frequency.
  const auto roomy = pm.max_performance_point(mw(60), chi, true);
  const auto plain = pm.max_performance_point(mw(60), chi, false);
  ASSERT_TRUE(roomy.has_value());
  ASSERT_TRUE(plain.has_value());
  EXPECT_GE(roomy->freq_hz, plain->freq_hz);
}

TEST(PulpPowerModel, BoostNeverViolatesBudget) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  for (double budget = mw(0.5); budget < mw(200); budget *= 1.7) {
    const auto op = pm.max_performance_point(budget, chi, true);
    if (!op) continue;
    EXPECT_LE(pm.total_w(chi, *op), budget * 1.0001) << budget;
  }
}

TEST(PulpPowerModel, BoostAtLeastAsFastAsNominal) {
  PulpPowerModel pm;
  const ActivityFactors chi = ActivityFactors::all_on(4);
  for (double budget = mw(0.5); budget < mw(200); budget *= 1.7) {
    const auto boosted = pm.max_performance_point(budget, chi, true);
    const auto nominal = pm.max_performance_point(budget, chi, false);
    if (!nominal) continue;
    ASSERT_TRUE(boosted.has_value());
    EXPECT_GE(boosted->freq_hz, nominal->freq_hz * 0.999) << budget;
  }
}

TEST(ActivityFactors, FromStatsRanges) {
  const auto cfg = core::or10n_config();
  const auto& info = kernels::all_kernels()[0];
  const auto kc = info.factory(cfg.features, 4, kernels::Target::kCluster, 1);
  const auto run = kernels::run_on_cluster(kc, cfg, 4);
  const ActivityFactors chi = ActivityFactors::from_stats(run.stats);
  EXPECT_GT(chi.cores_run, 2.0);
  EXPECT_LE(chi.cores_run + chi.cores_idle, 4.0 + 1e-6);
  EXPECT_GT(chi.mem, 0.1);
  EXPECT_LE(chi.mem, 8.0);
  EXPECT_GE(chi.dma, 0.0);
  EXPECT_LE(chi.dma, 1.0);
}

}  // namespace
}  // namespace ulp::power
