// Extension kernels (FFT, FIR bank): same bit-exactness contract as the
// Table I kernels, on every target and core count.
#include <cmath>
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"

namespace ulp::kernels {
namespace {

class ExtensionKernels : public ::testing::TestWithParam<KernelInfo> {};

TEST_P(ExtensionKernels, FlatOr10nMatchesGolden) {
  const auto cfg = core::or10n_config();
  const KernelCase kc = GetParam().factory(cfg.features, 1, Target::kFlat, 7);
  EXPECT_TRUE(run_on_flat(kc, cfg).matches(kc)) << kc.name;
}

TEST_P(ExtensionKernels, FlatCortexM4MatchesGolden) {
  const auto cfg = core::cortex_m4_config();
  const KernelCase kc = GetParam().factory(cfg.features, 1, Target::kFlat, 7);
  EXPECT_TRUE(run_on_flat(kc, cfg).matches(kc)) << kc.name;
}

TEST_P(ExtensionKernels, Cluster4MatchesGolden) {
  const auto cfg = core::or10n_config();
  const KernelCase kc =
      GetParam().factory(cfg.features, 4, Target::kCluster, 7);
  EXPECT_TRUE(run_on_cluster(kc, cfg, 4).matches(kc)) << kc.name;
}

TEST_P(ExtensionKernels, ParallelSpeedupIsReal) {
  const auto cfg = core::or10n_config();
  const KernelCase k1 =
      GetParam().factory(cfg.features, 1, Target::kCluster, 7);
  const KernelCase k4 =
      GetParam().factory(cfg.features, 4, Target::kCluster, 7);
  const double s = static_cast<double>(run_on_cluster(k1, cfg, 1).cycles) /
                   static_cast<double>(run_on_cluster(k4, cfg, 4).cycles);
  EXPECT_GT(s, 1.5) << k1.name;
  EXPECT_LT(s, 4.05) << k1.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ext, ExtensionKernels, ::testing::ValuesIn(extension_kernels()),
    [](const ::testing::TestParamInfo<KernelInfo>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(FftKernel, ImpulseGivesFlatSpectrum) {
  // Semantics sanity beyond bit-exactness: the FFT of a (scaled) impulse
  // at n=0 is constant across bins. Build a case, overwrite the input with
  // the impulse, recompute expectations via the simulator itself on two
  // different targets — they must agree — and check the DC structure.
  const auto cfg = core::or10n_config();
  KernelCase kc = make_fft(cfg.features, 4, Target::kCluster, 7);
  std::fill(kc.input.begin(), kc.input.end(), 0);
  // re[0] = 16384 (8.0 in Q4.11); after 9 stages of >>1 -> 32 per bin.
  kc.input[0] = 0x00;
  kc.input[1] = 0x40;
  const auto out = run_on_cluster(kc, cfg, 4);
  for (u32 bin = 0; bin < 512; bin += 37) {
    const i16 re = static_cast<i16>(
        static_cast<u16>(out.output[4 * bin]) |
        static_cast<u16>(out.output[4 * bin + 1]) << 8);
    const i16 im = static_cast<i16>(
        static_cast<u16>(out.output[4 * bin + 2]) |
        static_cast<u16>(out.output[4 * bin + 3]) << 8);
    EXPECT_EQ(re, 32) << "bin " << bin;
    EXPECT_EQ(im, 0) << "bin " << bin;
  }
}

TEST(FirKernel, DeltaCoefficientsPassSignalThrough) {
  // With h = delta (first tap = 1.0, rest 0) the golden reference must
  // return the input signal; this checks our reference, which in turn the
  // bit-exactness tests pin to the generated code. (The factory's
  // coefficients are random; here we verify the reference's structure via
  // linearity: doubling the input doubles the output.)
  const auto cfg = core::or10n_config();
  const KernelCase a = make_fir_bank(cfg.features, 1, Target::kFlat, 3);
  KernelCase b = make_fir_bank(cfg.features, 1, Target::kFlat, 3);
  EXPECT_EQ(a.expected, b.expected);  // determinism
}

TEST(FftKernel, BarrierHeavyParallelismStillExact) {
  // 9 stages x 4 cores = lots of barrier traffic; run several seeds.
  const auto cfg = core::or10n_config();
  for (u64 seed : {1ull, 2ull, 3ull}) {
    const KernelCase kc = make_fft(cfg.features, 4, Target::kCluster, seed);
    EXPECT_TRUE(run_on_cluster(kc, cfg, 4).matches(kc)) << seed;
  }
}

}  // namespace
}  // namespace ulp::kernels
