// Correctness of all ten Table I kernels: every generated program must
// reproduce its golden reference bit-exactly, on every core configuration
// and platform it targets. Parameterised over the full kernel list.
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"

namespace ulp::kernels {
namespace {

class KernelCorrectness : public ::testing::TestWithParam<KernelInfo> {};

TEST_P(KernelCorrectness, FlatOr10nMatchesGolden) {
  const auto cfg = core::or10n_config();
  const KernelCase kc = GetParam().factory(cfg.features, 1, Target::kFlat, 7);
  const RunOutcome out = run_on_flat(kc, cfg);
  EXPECT_TRUE(out.matches(kc)) << kc.name;
}

TEST_P(KernelCorrectness, FlatCortexM4MatchesGolden) {
  const auto cfg = core::cortex_m4_config();
  const KernelCase kc = GetParam().factory(cfg.features, 1, Target::kFlat, 7);
  const RunOutcome out = run_on_flat(kc, cfg);
  EXPECT_TRUE(out.matches(kc)) << kc.name;
}

TEST_P(KernelCorrectness, FlatBaselineMatchesGolden) {
  const auto cfg = core::baseline_config();
  const KernelCase kc = GetParam().factory(cfg.features, 1, Target::kFlat, 7);
  const RunOutcome out = run_on_flat(kc, cfg);
  EXPECT_TRUE(out.matches(kc)) << kc.name;
}

TEST_P(KernelCorrectness, Cluster4CoresMatchesGolden) {
  const auto cfg = core::or10n_config();
  const KernelCase kc =
      GetParam().factory(cfg.features, 4, Target::kCluster, 7);
  const RunOutcome out = run_on_cluster(kc, cfg, 4);
  EXPECT_TRUE(out.matches(kc)) << kc.name;
}

TEST_P(KernelCorrectness, Cluster1CoreMatchesGolden) {
  const auto cfg = core::or10n_config();
  const KernelCase kc =
      GetParam().factory(cfg.features, 1, Target::kCluster, 7);
  const RunOutcome out = run_on_cluster(kc, cfg, 1);
  EXPECT_TRUE(out.matches(kc)) << kc.name;
}

TEST_P(KernelCorrectness, DifferentSeedsDifferentData) {
  const auto cfg = core::or10n_config();
  const KernelCase a = GetParam().factory(cfg.features, 1, Target::kFlat, 1);
  const KernelCase b = GetParam().factory(cfg.features, 1, Target::kFlat, 2);
  EXPECT_NE(a.input, b.input) << a.name;
}

TEST_P(KernelCorrectness, ParallelSpeedupIsReal) {
  // 4 cores must beat 1 core, and by no more than the ideal 4x.
  const auto cfg = core::or10n_config();
  const KernelCase k1 =
      GetParam().factory(cfg.features, 1, Target::kCluster, 7);
  const KernelCase k4 =
      GetParam().factory(cfg.features, 4, Target::kCluster, 7);
  const u64 c1 = run_on_cluster(k1, cfg, 1).cycles;
  const u64 c4 = run_on_cluster(k4, cfg, 4).cycles;
  const double speedup =
      static_cast<double>(c1) / static_cast<double>(c4);
  EXPECT_GT(speedup, 1.5) << k1.name;
  EXPECT_LT(speedup, 4.05) << k1.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelCorrectness, ::testing::ValuesIn(all_kernels()),
    [](const ::testing::TestParamInfo<KernelInfo>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(KernelTable, SizesMatchPaperScale) {
  // Table I sanity: input/output sizes of the headline kernels.
  const auto cfg = core::or10n_config();
  const KernelCase mm = make_matmul_char(cfg.features, 4, Target::kCluster, 7);
  EXPECT_EQ(mm.input.size(), 8u * 1024u);
  EXPECT_EQ(mm.output_bytes, 4u * 1024u);
  const KernelCase ms = make_matmul_short(cfg.features, 4, Target::kCluster, 7);
  EXPECT_EQ(ms.input.size(), 16u * 1024u);
  EXPECT_EQ(ms.output_bytes, 8u * 1024u);
  const KernelCase cn = make_cnn(cfg.features, 4, Target::kCluster, 7);
  EXPECT_EQ(cn.input.size(), 2u * 1024u);
  EXPECT_EQ(cn.output_bytes, 40u);
  const KernelCase hg = make_hog(cfg.features, 4, Target::kCluster, 7);
  EXPECT_EQ(hg.input.size(), 16u * 1024u);
  EXPECT_GT(hg.output_bytes, 30u * 1024u);
}

TEST(KernelTable, RiscOpsOrdering) {
  // The paper's RISC-op ordering: svm << matmul/cnn << hog.
  u64 ops_svm = 0, ops_mm = 0, ops_hog = 0;
  for (const KernelInfo& info : all_kernels()) {
    if (info.name == "svm (linear)") ops_svm = measure_risc_ops(info);
    if (info.name == "matmul") ops_mm = measure_risc_ops(info);
    if (info.name == "hog") ops_hog = measure_risc_ops(info);
  }
  EXPECT_GT(ops_mm, ops_svm);
  EXPECT_GT(ops_hog, ops_mm);
}

TEST(KernelTable, StrassenBeatsDirectOnOps) {
  // Strassen must need fewer baseline multiplications than direct matmul.
  u64 ops_mm = 0, ops_st = 0;
  for (const KernelInfo& info : all_kernels()) {
    if (info.name == "matmul") ops_mm = measure_risc_ops(info);
    if (info.name == "strassen") ops_st = measure_risc_ops(info);
  }
  EXPECT_LT(ops_st, ops_mm * 11 / 10);  // within noise of the paper's ratio
}

}  // namespace
}  // namespace ulp::kernels
