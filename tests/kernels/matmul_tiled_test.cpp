// The streaming tiled matmul: correctness of both pipelining modes, and
// the property the whole exercise exists for — overlapping DMA with
// compute must save cycles without changing a single output byte.
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"

namespace ulp::kernels {
namespace {

TEST(MatmulTiled, SequentialBitExact) {
  const auto cfg = core::or10n_config();
  const KernelCase kc = make_matmul_tiled(cfg.features, 4, 5, false);
  const RunOutcome out = run_on_cluster(kc, cfg, 4);
  EXPECT_TRUE(out.matches(kc));
}

TEST(MatmulTiled, DoubleBufferedBitExact) {
  const auto cfg = core::or10n_config();
  const KernelCase kc = make_matmul_tiled(cfg.features, 4, 5, true);
  const RunOutcome out = run_on_cluster(kc, cfg, 4);
  EXPECT_TRUE(out.matches(kc));
}

TEST(MatmulTiled, OverlapSavesCycles) {
  const auto cfg = core::or10n_config();
  const KernelCase seq = make_matmul_tiled(cfg.features, 4, 5, false);
  const KernelCase dbuf = make_matmul_tiled(cfg.features, 4, 5, true);
  const u64 c_seq = run_on_cluster(seq, cfg, 4).cycles;
  const u64 c_dbuf = run_on_cluster(dbuf, cfg, 4).cycles;
  EXPECT_LT(c_dbuf, c_seq);
  // The win is bounded by the total transfer time that can be hidden.
  EXPECT_LT(c_seq - c_dbuf, c_seq / 4);
}

TEST(MatmulTiled, DmaRunsDuringComputeOnlyWhenDoubleBuffered) {
  // In the double-buffered variant the DMA must be busy while cores are
  // active (overlap); measured as busy cycles beyond the eager variant's
  // stall-bounded schedule.
  const auto cfg = core::or10n_config();
  const KernelCase dbuf = make_matmul_tiled(cfg.features, 4, 5, true);
  const auto out = run_on_cluster(dbuf, cfg, 4);
  EXPECT_GT(out.stats.dma.bytes_moved,
            static_cast<u64>(128 * 64 + 64 * 64 + 128 * 64) - 1);
}

TEST(MatmulTiled, SingleCoreAlsoCorrect) {
  const auto cfg = core::or10n_config();
  for (bool dbuf : {false, true}) {
    const KernelCase kc = make_matmul_tiled(cfg.features, 1, 9, dbuf);
    const RunOutcome out = run_on_cluster(kc, cfg, 1);
    EXPECT_TRUE(out.matches(kc)) << "dbuf=" << dbuf;
  }
}

TEST(MatmulTiled, WorksWithoutSimd) {
  // The scalar path (codegen for a hypothetical SIMD-less cluster core).
  auto cfg = core::or10n_config();
  cfg.features.has_simd = false;
  const KernelCase kc = make_matmul_tiled(cfg.features, 4, 5, true);
  const RunOutcome out = run_on_cluster(kc, cfg, 4);
  EXPECT_TRUE(out.matches(kc));
}

}  // namespace
}  // namespace ulp::kernels
