// Property sweep: kernel correctness must hold for arbitrary workloads,
// not just the default seed — every (kernel, seed) pair is checked
// bit-exact on the 4-core cluster against its golden reference.
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "kernels/runner.hpp"

namespace ulp::kernels {
namespace {

struct SeedCase {
  KernelInfo info;
  u64 seed;
};

class KernelSeedSweep : public ::testing::TestWithParam<SeedCase> {};

TEST_P(KernelSeedSweep, ClusterBitExact) {
  const auto cfg = core::or10n_config();
  const auto& [info, seed] = GetParam();
  const KernelCase kc = info.factory(cfg.features, 4, Target::kCluster, seed);
  const RunOutcome out = run_on_cluster(kc, cfg, 4);
  EXPECT_TRUE(out.matches(kc)) << info.name << " seed " << seed;
}

TEST_P(KernelSeedSweep, CyclesAreDataIndependent) {
  // None of the kernels has data-dependent control flow that changes the
  // amount of work (branches select values, not trip counts) except for
  // TCDM-contention noise; cycle counts across seeds must agree within 2%.
  const auto cfg = core::or10n_config();
  const auto& [info, seed] = GetParam();
  const KernelCase a = info.factory(cfg.features, 4, Target::kCluster, seed);
  const KernelCase b =
      info.factory(cfg.features, 4, Target::kCluster, seed + 17);
  const u64 ca = run_on_cluster(a, cfg, 4).cycles;
  const u64 cb = run_on_cluster(b, cfg, 4).cycles;
  const double ratio = static_cast<double>(ca) / static_cast<double>(cb);
  EXPECT_NEAR(ratio, 1.0, 0.02) << info.name;
}

std::vector<SeedCase> seed_cases() {
  std::vector<SeedCase> cases;
  for (const auto& info : all_kernels()) {
    for (u64 seed : {11ull, 222ull}) cases.push_back({info, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsSeeds, KernelSeedSweep, ::testing::ValuesIn(seed_cases()),
    [](const ::testing::TestParamInfo<SeedCase>& info) {
      std::string name = info.param.info.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace ulp::kernels
