// batch::Pool: draining, idleness, inline mode.
#include "batch/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ulp::batch {
namespace {

TEST(Pool, RunsEveryTask) {
  std::atomic<int> count{0};
  {
    Pool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
    EXPECT_EQ(pool.pending(), 0u);
  }
}

TEST(Pool, ZeroWorkersRunsInlineOnSubmit) {
  Pool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  int count = 0;  // Plain int: inline mode is single-threaded by contract.
  std::thread::id submitter = std::this_thread::get_id();
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      ++count;
      EXPECT_EQ(std::this_thread::get_id(), submitter);
    });
    EXPECT_EQ(count, i + 1);  // Ran before submit returned.
  }
  pool.wait_idle();
  EXPECT_EQ(count, 10);
}

TEST(Pool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    Pool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(Pool, WaitIdleForReportsCompletion) {
  Pool pool(2);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_FALSE(pool.wait_idle_for(1));  // Task is stuck: times out.
  release.store(true);
  // Generous bound: just asserts it *does* go idle once released.
  EXPECT_TRUE(pool.wait_idle_for(10'000));
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Pool, ManyMoreTasksThanWorkers) {
  std::atomic<u64> sum{0};
  Pool pool(3);
  for (u64 i = 1; i <= 1000; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2u);
}

}  // namespace
}  // namespace ulp::batch
