// Warm-start byte-identity: a campaign whose jobs restore the accelerator
// boot state from the process-wide post-boot snapshot cache must produce
// aggregates byte-identical to the cold-booting campaign — the snapshot
// layer is a pure wall-clock optimisation, invisible in every result
// field, at any worker count.
#include <gtest/gtest.h>

#include "batch/aggregate.hpp"
#include "batch/engine.hpp"
#include "batch/runner.hpp"

namespace ulp::batch {
namespace {

CampaignSpec warm_start_spec() {
  // 8 jobs sharing a handful of (image, geometry) cache keys, with both
  // result-relevant axes and a profile collection pass in the mix.
  CampaignSpec spec;
  spec.kernels = {"matmul", "cnn"};
  spec.num_cores = {1, 4};
  spec.vdd = {0.5};
  spec.repeats = 2;
  spec.base_seed = 29;
  spec.collect_profile = true;
  return spec;
}

TEST(WarmStart, CampaignAggregatesAreByteIdenticalToColdStart) {
  CampaignSpec cold = warm_start_spec();
  CampaignSpec warm = warm_start_spec();
  warm.warm_start = true;
  ASSERT_EQ(cold.job_count(), 8u);

  for (const u32 workers : {0u, 1u, 4u}) {
    RunOptions options;
    options.workers = workers;
    const CampaignResult a = run_campaign(cold, options);
    const CampaignResult b = run_campaign(warm, options);
    EXPECT_EQ(to_json(a), to_json(b)) << "workers=" << workers;
    for (size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].pass, b.jobs[i].pass) << "job " << i;
      EXPECT_EQ(a.jobs[i].accel_cycles, b.jobs[i].accel_cycles)
          << "job " << i;
      EXPECT_EQ(a.jobs[i].total_instrs, b.jobs[i].total_instrs)
          << "job " << i;
    }
  }
}

TEST(WarmStart, NotAnAxisAndNotEchoedInAggregates) {
  // warm_start changes no result bytes, so it must not appear in the
  // serialised aggregate either — otherwise warm and cold runs of the
  // same campaign would stop being byte-comparable.
  CampaignSpec warm = warm_start_spec();
  warm.warm_start = true;
  RunOptions options;
  options.workers = 0;
  const CampaignResult result = run_campaign(warm, options);
  EXPECT_EQ(to_json(result).find("warm_start"), std::string::npos);
}

TEST(WarmStart, ParsesFromCampaignText) {
  CampaignSpec spec;
  ASSERT_TRUE(parse_campaign_text("warm_start = 1", &spec).ok());
  EXPECT_TRUE(spec.warm_start);
  ASSERT_TRUE(parse_campaign_text("warm_start = 0", &spec).ok());
  EXPECT_FALSE(spec.warm_start);
  const std::vector<JobSpec> jobs = expand([] {
    CampaignSpec s;
    s.warm_start = true;
    return s;
  }());
  ASSERT_FALSE(jobs.empty());
  EXPECT_TRUE(jobs[0].warm_start);
}

TEST(WarmStart, SingleJobMatchesColdJobExactly) {
  CampaignSpec spec = warm_start_spec();
  const std::vector<JobSpec> jobs = expand(spec);
  JobSpec cold = jobs[0];
  JobSpec warm = cold;
  warm.warm_start = true;
  // Run the warm job twice: the first run populates the process-wide
  // boot-snapshot cache, the second hits it. All three must agree with
  // the cold run on every result field that reaches the aggregate.
  const JobResult rc = run_job(cold);
  const JobResult rw1 = run_job(warm);
  const JobResult rw2 = run_job(warm);
  for (const JobResult* r : {&rw1, &rw2}) {
    EXPECT_EQ(rc.pass, r->pass);
    EXPECT_EQ(rc.accel_cycles, r->accel_cycles);
    EXPECT_EQ(rc.total_instrs, r->total_instrs);
    EXPECT_EQ(rc.tcdm_conflicts, r->tcdm_conflicts);
    EXPECT_EQ(rc.icache_misses, r->icache_misses);
    EXPECT_EQ(rc.energy.total_j(), r->energy.total_j());
    EXPECT_EQ(rc.timing.accel_cycles, r->timing.accel_cycles);
    EXPECT_EQ(rc.timing.t_compute_s, r->timing.t_compute_s);
  }
}

}  // namespace
}  // namespace ulp::batch
