// Scale-out campaign axes: the `clusters` and `lanes` dimensions added to
// CampaignSpec must not disturb the established campaign contracts —
// default-valued axes leave job indices, seeds and labels byte-identical
// to the pre-axis format, the enlarged seed space stays collision-free,
// and the aggregate remains worker-count invariant.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "batch/aggregate.hpp"
#include "batch/campaign.hpp"
#include "batch/engine.hpp"
#include "common/rng.hpp"

namespace ulp::batch {
namespace {

TEST(ScaleOutCampaign, JobCountMultipliesNewAxes) {
  CampaignSpec spec;
  spec.kernels = {"matmul", "hog"};
  spec.num_cores = {1, 4};
  spec.vdd = {0.5};
  spec.repeats = 3;
  EXPECT_EQ(spec.job_count(), 2u * 2u * 3u);
  spec.clusters = {1, 2, 4};
  spec.lanes = {0, 4};
  EXPECT_EQ(spec.job_count(), 2u * 2u * 3u * 3u * 2u);
}

TEST(ScaleOutCampaign, DefaultAxesKeepLegacyLabelsAndSeeds) {
  CampaignSpec legacy;
  legacy.kernels = {"matmul"};
  legacy.num_cores = {4};
  legacy.vdd = {0.5};
  legacy.faults = {"none", "seed=7,flip=1e-4"};
  legacy.repeats = 1;
  legacy.base_seed = 11;

  CampaignSpec with_axes = legacy;
  with_axes.clusters = {1};  // explicit defaults, size-1 axes
  with_axes.lanes = {0};

  const auto a = expand(legacy);
  const auto b = expand(with_axes);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label(), b[i].label());
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].index, b[i].index);
  }
  // The default cells carry no clusters/lanes decoration at all.
  EXPECT_EQ(a[0].label(), "matmul/cores4/mcu16/vdd0.50/clean/r0");
}

TEST(ScaleOutCampaign, ScaleOutCellsLabelClustersAndLanes) {
  CampaignSpec spec;
  spec.kernels = {"matmul"};
  spec.num_cores = {4};
  spec.clusters = {2};
  spec.lanes = {4};
  spec.vdd = {0.5};
  spec.repeats = 1;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].label(), "matmul/cores4x2/mcu16/l4/vdd0.50/clean/r0");
  EXPECT_EQ(jobs[0].clusters, 2u);
  EXPECT_EQ(jobs[0].lanes, 4u);
}

TEST(ScaleOutCampaign, ClusterShardSeedsNeverCollide) {
  // The runner derives cluster c's input shard seed as
  // derive_seed(job.seed, c) for c >= 1 (cluster 0 reuses the job seed).
  // Job seeds themselves are derive_seed(base, index). Audit the combined
  // space for a deliberately large campaign: every job seed and every
  // shard seed must be pairwise distinct, or two clusters (or a cluster
  // and an unrelated job) would generate identical inputs.
  CampaignSpec spec;
  spec.kernels = {"matmul", "cnn", "hog"};
  spec.num_cores = {1, 2, 4, 8};
  spec.clusters = {1, 2, 4, 8, 16, 32};
  spec.lanes = {0, 1, 4};
  spec.vdd = {0.5, 0.8, 1.0};
  spec.repeats = 4;
  spec.base_seed = 2026;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), spec.job_count());

  std::set<u64> seen;
  u64 values = 0;
  for (const JobSpec& job : jobs) {
    seen.insert(job.seed);
    ++values;
    for (u32 c = 1; c < job.clusters; ++c) {
      seen.insert(derive_seed(job.seed, c));
      ++values;
    }
  }
  EXPECT_EQ(seen.size(), values) << "seed collision across the clusters axis";
}

TEST(ScaleOutCampaign, AggregateByteIdenticalAcrossWorkerCounts) {
  // The worker-invariance contract extended over the new axes: a campaign
  // sweeping clusters x lanes serialises identically whether it runs
  // inline or across 4 threads.
  CampaignSpec spec;
  spec.kernels = {"matmul"};
  spec.num_cores = {4};
  spec.clusters = {1, 2};
  spec.lanes = {0, 4};
  spec.vdd = {0.5};
  spec.faults = {"none", "seed=7,flip=2e-4"};
  spec.repeats = 1;
  spec.base_seed = 5;

  RunOptions serial;
  serial.workers = 0;
  const CampaignResult ref = run_campaign(spec, serial);
  ASSERT_EQ(ref.jobs.size(), spec.job_count());

  RunOptions threaded;
  threaded.workers = 4;
  const CampaignResult par = run_campaign(spec, threaded);
  EXPECT_EQ(to_json(ref), to_json(par));
}

TEST(ScaleOutCampaign, ParserReadsClustersAndLanesKeys) {
  CampaignSpec spec;
  const Status s = parse_campaign_text(
      "kernels = matmul\n"
      "cores = 4\n"
      "clusters = 1, 2\n"
      "lanes = 0, 4\n"
      "vdd = 0.5\n"
      "repeats = 1\n",
      &spec);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(spec.clusters, (std::vector<u32>{1, 2}));
  EXPECT_EQ(spec.lanes, (std::vector<u32>{0, 4}));
  EXPECT_EQ(spec.job_count(), 4u);
}

}  // namespace
}  // namespace ulp::batch
