// CampaignSpec expansion and campaign-file parsing.
#include "batch/campaign.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace ulp::batch {
namespace {

TEST(CampaignExpand, DocumentOrderAndCount) {
  CampaignSpec spec;
  spec.kernels = {"matmul", "cnn"};
  spec.num_cores = {1, 4};
  spec.mcu_mhz = {16.0};
  spec.vdd = {0.5, 0.8};
  spec.faults = {"none"};
  spec.repeats = 3;
  const std::vector<JobSpec> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), spec.job_count());
  ASSERT_EQ(jobs.size(), 2u * 2u * 1u * 2u * 1u * 3u);

  // Indices are dense document order; repeats vary innermost, kernels
  // outermost.
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
  }
  EXPECT_EQ(jobs[0].kernel, "matmul");
  EXPECT_EQ(jobs[0].repeat, 0u);
  EXPECT_EQ(jobs[1].repeat, 1u);
  EXPECT_EQ(jobs[2].repeat, 2u);
  EXPECT_EQ(jobs[3].vdd, 0.8);
  EXPECT_EQ(jobs.back().kernel, "cnn");
  EXPECT_EQ(jobs.back().num_cores, 4u);
}

TEST(CampaignExpand, SeedsAreDerivedFromIndexOnly) {
  CampaignSpec spec;
  spec.kernels = {"matmul", "cnn"};
  spec.repeats = 4;
  spec.base_seed = 99;
  const std::vector<JobSpec> jobs = expand(spec);

  std::set<u64> seeds;
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(j.seed, derive_seed(99, j.index));
    seeds.insert(j.seed);
  }
  // Derived seeds are distinct across the matrix (splitmix64 finalizer).
  EXPECT_EQ(seeds.size(), jobs.size());

  // Growing the matrix does not disturb the seeds of earlier cells with
  // the same index, and a different base re-keys everything.
  spec.repeats = 8;
  const std::vector<JobSpec> more = expand(spec);
  EXPECT_EQ(more[0].seed, jobs[0].seed);
  spec.base_seed = 100;
  EXPECT_NE(expand(spec)[0].seed, jobs[0].seed);
}

TEST(CampaignExpand, NormalisesNoneFaultSpec) {
  CampaignSpec spec;
  spec.faults = {"none", "seed=7,flip=1e-4"};
  const std::vector<JobSpec> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs[0].fault_spec.empty());
  EXPECT_EQ(jobs[1].fault_spec, "seed=7,flip=1e-4");
}

TEST(CampaignParse, FullFileRoundTrip) {
  CampaignSpec spec;
  const Status s = parse_campaign_text(
      "# sweep over the paper's design space\n"
      "engine   = cosim\n"
      "kernels  = matmul, cnn  # two of Table 1's workloads\n"
      "cores    = 1, 4, 8\n"
      "mcu_mhz  = 16, 48\n"
      "vdd      = 0.5, 0.8, 1.0\n"
      "faults   = none; seed=7,flip=1e-4\n"
      "repeats  = 2\n"
      "seed     = 42\n"
      "iterations = 10\n"
      "double_buffered = 1\n",
      &spec);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(spec.engine, Engine::kCosim);
  EXPECT_EQ(spec.kernels, (std::vector<std::string>{"matmul", "cnn"}));
  EXPECT_EQ(spec.num_cores, (std::vector<u32>{1, 4, 8}));
  EXPECT_EQ(spec.mcu_mhz, (std::vector<double>{16, 48}));
  EXPECT_EQ(spec.vdd, (std::vector<double>{0.5, 0.8, 1.0}));
  EXPECT_EQ(spec.faults,
            (std::vector<std::string>{"none", "seed=7,flip=1e-4"}));
  EXPECT_EQ(spec.repeats, 2u);
  EXPECT_EQ(spec.base_seed, 42u);
  EXPECT_EQ(spec.iterations, 10u);
  EXPECT_TRUE(spec.double_buffered);
  EXPECT_EQ(spec.job_count(), 2u * 3u * 2u * 3u * 2u * 2u);
}

TEST(CampaignParse, KeysNotPresentKeepDefaults) {
  CampaignSpec spec;
  ASSERT_TRUE(parse_campaign_text("cores = 8\n", &spec).ok());
  EXPECT_EQ(spec.num_cores, (std::vector<u32>{8}));
  EXPECT_EQ(spec.kernels, (std::vector<std::string>{"matmul"}));
  EXPECT_EQ(spec.engine, Engine::kAnalytic);
}

TEST(CampaignParse, ErrorsCarryLineNumbers) {
  CampaignSpec spec;
  const Status bad_key = parse_campaign_text("cores = 4\nwat = 1\n", &spec);
  EXPECT_EQ(bad_key.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_key.message().find("line 2"), std::string::npos);

  const Status bad_num = parse_campaign_text("vdd = 0.5, oops\n", &spec);
  EXPECT_EQ(bad_num.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_num.message().find("line 1"), std::string::npos);

  EXPECT_EQ(parse_campaign_text("engine = magic\n", &spec).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_campaign_text("cores = 0\n", &spec).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_campaign_text("just some words\n", &spec).code(),
            StatusCode::kInvalidArgument);
}

TEST(CampaignParse, MissingFileIsIoError) {
  CampaignSpec spec;
  EXPECT_EQ(parse_campaign_file("/nonexistent/campaign.txt", &spec).code(),
            StatusCode::kIoError);
}

TEST(ProcessConfig, ReferenceSteppingDefaultIsInjectable) {
  // Latch (or read back) the process default, exercise injection both
  // ways, then restore what the process started with: later tests build
  // clusters under the original mode.
  const bool original = config::reference_stepping_default();
  config::set_reference_stepping_default(true);
  EXPECT_TRUE(config::reference_stepping_default());
  config::set_reference_stepping_default(false);
  EXPECT_FALSE(config::reference_stepping_default());
  config::set_reference_stepping_default(original);
  EXPECT_EQ(config::reference_stepping_default(), original);
}

TEST(CampaignLabel, IsHumanReadable) {
  CampaignSpec spec;
  spec.faults = {"seed=7,flip=1e-4"};
  const std::vector<JobSpec> jobs = expand(spec);
  EXPECT_EQ(jobs[0].label(), "matmul/cores4/mcu16/vdd0.50/seed=7,flip=1e-4/r0");
  CampaignSpec clean;
  EXPECT_EQ(expand(clean)[0].label(), "matmul/cores4/mcu16/vdd0.50/clean/r0");
}

}  // namespace
}  // namespace ulp::batch
