// Campaign engine determinism and failure isolation.
//
// The load-bearing properties: (1) the serialised aggregate of a campaign
// is byte-identical whatever the worker count, (2) a job's result is the
// same whether it runs alone or inside a campaign, (3) one failing job
// never takes the campaign down with it.
#include "batch/engine.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "batch/aggregate.hpp"
#include "batch/runner.hpp"

namespace ulp::batch {
namespace {

CampaignSpec mixed_spec() {
  CampaignSpec spec;
  spec.kernels = {"matmul", "cnn"};
  spec.num_cores = {1, 4};
  spec.vdd = {0.5, 0.8};
  spec.faults = {"none", "seed=7,flip=2e-4"};
  spec.repeats = 2;
  spec.base_seed = 13;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(CampaignEngine, AggregateIsByteIdenticalAcrossWorkerCounts) {
  const CampaignSpec spec = mixed_spec();

  RunOptions serial;
  serial.workers = 0;  // Inline: the zero-thread oracle.
  const CampaignResult ref = run_campaign(spec, serial);
  ASSERT_EQ(ref.jobs.size(), spec.job_count());

  RunOptions threaded;
  threaded.workers = 4;
  const CampaignResult par = run_campaign(spec, threaded);

  EXPECT_EQ(to_json(ref), to_json(par));

  const std::string csv_ref = temp_path("campaign_ref.csv");
  const std::string csv_par = temp_path("campaign_par.csv");
  ASSERT_TRUE(write_csv(csv_ref, ref).ok());
  ASSERT_TRUE(write_csv(csv_par, par).ok());
  const std::string ref_text = slurp(csv_ref);
  EXPECT_FALSE(ref_text.empty());
  EXPECT_EQ(ref_text, slurp(csv_par));

  const std::string json_path = temp_path("campaign.json");
  ASSERT_TRUE(write_json(json_path, ref).ok());
  EXPECT_EQ(slurp(json_path), to_json(ref));
}

TEST(CampaignEngine, JobAloneMatchesJobInsideCampaign) {
  const CampaignSpec spec = mixed_spec();
  RunOptions options;
  options.workers = 4;
  const CampaignResult result = run_campaign(spec, options);

  // Spot-check cells across the matrix, including fault-injected ones:
  // run_job(spec) standalone must reproduce the in-campaign result
  // exactly, counters included.
  const std::vector<JobSpec> jobs = expand(spec);
  for (const u64 k : {u64{0}, u64{5}, u64{13}, jobs.size() - 1}) {
    const JobResult alone = run_job(jobs[k]);
    const JobResult& in_campaign = result.jobs[k];
    EXPECT_EQ(alone.status.code(), in_campaign.status.code()) << k;
    EXPECT_EQ(alone.pass, in_campaign.pass) << k;
    EXPECT_EQ(alone.accel_cycles, in_campaign.accel_cycles) << k;
    EXPECT_EQ(alone.total_instrs, in_campaign.total_instrs) << k;
    EXPECT_EQ(alone.fault_count, in_campaign.fault_count) << k;
    EXPECT_EQ(alone.robust.crc_errors, in_campaign.robust.crc_errors) << k;
    EXPECT_EQ(alone.robust.retransmissions,
              in_campaign.robust.retransmissions)
        << k;
    EXPECT_EQ(alone.timing.t_compute_s, in_campaign.timing.t_compute_s) << k;
    EXPECT_EQ(alone.energy.total_j(), in_campaign.energy.total_j()) << k;
  }
}

TEST(CampaignEngine, FailingJobIsIsolated) {
  CampaignSpec spec;
  spec.kernels = {"matmul", "no_such_kernel", "cnn"};
  spec.num_cores = {4};
  RunOptions options;
  options.workers = 2;
  const CampaignResult result = run_campaign(spec, options);

  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_TRUE(result.jobs[0].status.ok());
  EXPECT_TRUE(result.jobs[0].pass);
  EXPECT_EQ(result.jobs[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(result.jobs[1].pass);
  EXPECT_TRUE(result.jobs[2].status.ok());
  EXPECT_TRUE(result.jobs[2].pass);

  EXPECT_EQ(result.totals.jobs, 3u);
  EXPECT_EQ(result.totals.passed, 2u);
  EXPECT_EQ(result.totals.failed, 1u);

  // The failed job is visible (with its message) in both serialisations.
  const std::string json = to_json(result);
  EXPECT_NE(json.find("no_such_kernel"), std::string::npos);
  EXPECT_NE(json.find("unknown kernel"), std::string::npos);
}

TEST(CampaignEngine, BadFaultSpecFailsOnlyThatJob) {
  CampaignSpec spec;
  spec.faults = {"none", "bogus=1"};
  const CampaignResult result = run_campaign(spec, {});
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_TRUE(result.jobs[0].status.ok());
  EXPECT_EQ(result.jobs[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.totals.failed, 1u);
}

TEST(CampaignEngine, ProgressReachesFinalSnapshotOnCallingThread) {
  CampaignSpec spec;
  spec.kernels = {"matmul"};
  spec.repeats = 3;
  RunOptions options;
  options.workers = 2;
  options.progress_period_ms = 1;
  const std::thread::id caller = std::this_thread::get_id();
  ProgressSnapshot last;
  int calls = 0;
  options.on_progress = [&](const ProgressSnapshot& p) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    last = p;
    ++calls;
  };
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_GE(calls, 1);
  EXPECT_EQ(last.jobs_total, 3u);
  EXPECT_EQ(last.jobs_done, 3u);
  EXPECT_EQ(last.accel_cycles, result.totals.accel_cycles);
  EXPECT_GE(result.elapsed_s, 0.0);
}

TEST(CampaignEngine, CosimEngineAggregatesDeterministically) {
  CampaignSpec spec;
  spec.engine = Engine::kCosim;
  spec.kernels = {"matmul"};
  spec.num_cores = {1, 4};
  spec.faults = {"none", "seed=5,flip=1e-4"};
  RunOptions serial;
  serial.workers = 0;
  RunOptions threaded;
  threaded.workers = 4;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, threaded);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(a.totals.host_cycles, b.totals.host_cycles);
  EXPECT_GT(a.totals.host_cycles, 0u);
  for (const JobResult& r : a.jobs) {
    EXPECT_TRUE(r.pass) << r.spec.label() << ": " << r.status.message();
  }
}

}  // namespace
}  // namespace ulp::batch
