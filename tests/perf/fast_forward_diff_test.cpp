// Differential exactness tests for the quiescence fast-forward scheduler.
//
// The fast path (Cluster::advance / HeteroSystem::run_to_host_halt with
// parked cores, analytic DMA windows and host-sleep strides) must be
// *observably invisible*: every counter a user can read — cycles, per-core
// performance counters, TCDM access/conflict totals, DMA statistics,
// I$ misses, wire statistics — and every output byte must be identical to
// the per-cycle reference loop kept behind ULP_REFERENCE_STEPPING. These
// tests run each workload twice, once per mode, and compare everything.
// They carry the `perf` CTest label: `ctest -L perf`.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "common/rng.hpp"
#include "kernels/kernel.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"
#include "trace/event_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using codegen::Builder;
using isa::Opcode;
using kernels::Target;

void expect_same_perf(const core::PerfCounters& ref,
                      const core::PerfCounters& ff, const std::string& what) {
  EXPECT_EQ(ref.cycles, ff.cycles) << what;
  EXPECT_EQ(ref.active_cycles, ff.active_cycles) << what;
  EXPECT_EQ(ref.sleep_cycles, ff.sleep_cycles) << what;
  EXPECT_EQ(ref.sleep_barrier_cycles, ff.sleep_barrier_cycles) << what;
  EXPECT_EQ(ref.sleep_dma_cycles, ff.sleep_dma_cycles) << what;
  EXPECT_EQ(ref.sleep_event_cycles, ff.sleep_event_cycles) << what;
  EXPECT_EQ(ref.halted_cycles, ff.halted_cycles) << what;
  EXPECT_EQ(ref.stall_mem, ff.stall_mem) << what;
  EXPECT_EQ(ref.stall_icache, ff.stall_icache) << what;
  EXPECT_EQ(ref.instrs, ff.instrs) << what;
  EXPECT_EQ(ref.loads, ff.loads) << what;
  EXPECT_EQ(ref.stores, ff.stores) << what;
  EXPECT_EQ(ref.branches, ff.branches) << what;
  EXPECT_EQ(ref.branches_taken, ff.branches_taken) << what;
  EXPECT_EQ(ref.mults, ff.mults) << what;
  EXPECT_EQ(ref.divs, ff.divs) << what;
  EXPECT_EQ(ref.barriers, ff.barriers) << what;
}

void expect_same_dma(const dma::DmaStats& ref, const dma::DmaStats& ff,
                     const std::string& what) {
  EXPECT_EQ(ref.busy_cycles, ff.busy_cycles) << what;
  EXPECT_EQ(ref.bytes_moved, ff.bytes_moved) << what;
  EXPECT_EQ(ref.transfers_completed, ff.transfers_completed) << what;
  EXPECT_EQ(ref.stall_cycles, ff.stall_cycles) << what;
}

/// Everything observable after a cluster run.
struct ClusterObservation {
  u64 run_cycles = 0;
  cluster::ClusterStats stats;
  u64 tcdm_accesses = 0;
  u64 tcdm_conflicts = 0;
  u64 barriers_completed = 0;
  std::vector<u8> output;
};

void expect_same_observation(const ClusterObservation& ref,
                             const ClusterObservation& ff,
                             const std::string& what) {
  EXPECT_EQ(ref.run_cycles, ff.run_cycles) << what;
  EXPECT_EQ(ref.stats.cycles, ff.stats.cycles) << what;
  ASSERT_EQ(ref.stats.cores.size(), ff.stats.cores.size()) << what;
  for (size_t i = 0; i < ref.stats.cores.size(); ++i) {
    expect_same_perf(ref.stats.cores[i], ff.stats.cores[i],
                     what + " core " + std::to_string(i));
  }
  expect_same_dma(ref.stats.dma, ff.stats.dma, what + " dma");
  EXPECT_EQ(ref.stats.tcdm_conflicts, ff.stats.tcdm_conflicts) << what;
  EXPECT_EQ(ref.stats.icache_misses, ff.stats.icache_misses) << what;
  EXPECT_EQ(ref.tcdm_accesses, ff.tcdm_accesses) << what;
  EXPECT_EQ(ref.tcdm_conflicts, ff.tcdm_conflicts) << what;
  EXPECT_EQ(ref.barriers_completed, ff.barriers_completed) << what;
  EXPECT_EQ(ref.output, ff.output) << what;
}

ClusterObservation run_cluster_case(const kernels::KernelCase& kc,
                                    bool reference) {
  cluster::ClusterParams params;
  params.reference_stepping = reference;
  Cluster cl(params);
  cl.load_program(kc.program);
  for (size_t i = 0; i < kc.input.size(); ++i) {
    cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                         kc.input[i]);
  }
  ClusterObservation obs;
  obs.run_cycles = cl.run();
  obs.stats = cl.stats();
  obs.tcdm_accesses = cl.tcdm().total_accesses();
  obs.tcdm_conflicts = cl.tcdm().total_conflicts();
  obs.barriers_completed = cl.events().barriers_completed();
  obs.output.resize(kc.output_bytes);
  for (size_t i = 0; i < kc.output_bytes; ++i) {
    obs.output[i] = static_cast<u8>(
        cl.bus().debug_load(kc.output_addr + static_cast<Addr>(i), 1, false));
  }
  return obs;
}

ClusterObservation run_program(const isa::Program& prog, bool reference) {
  cluster::ClusterParams params;
  params.reference_stepping = reference;
  Cluster cl(params);
  cl.load_program(prog);
  ClusterObservation obs;
  obs.run_cycles = cl.run();
  obs.stats = cl.stats();
  obs.tcdm_accesses = cl.tcdm().total_accesses();
  obs.tcdm_conflicts = cl.tcdm().total_conflicts();
  obs.barriers_completed = cl.events().barriers_completed();
  return obs;
}

// Every Table I kernel (the paper's benchmark suite) must be cycle- and
// bit-exact between the two stepping modes.
TEST(FastForwardDiff, TableOneKernelsAreCycleExact) {
  const auto cfg = core::or10n_config();
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    const auto kc = info.factory(cfg.features, 4, Target::kCluster, 7);
    const ClusterObservation ref = run_cluster_case(kc, /*reference=*/true);
    const ClusterObservation ff = run_cluster_case(kc, /*reference=*/false);
    expect_same_observation(ref, ff, info.name);
    EXPECT_EQ(ff.output, kc.expected) << info.name;
  }
}

TEST(FastForwardDiff, ExtensionKernelsAreCycleExact) {
  const auto cfg = core::or10n_config();
  for (const kernels::KernelInfo& info : kernels::extension_kernels()) {
    const auto kc = info.factory(cfg.features, 4, Target::kCluster, 11);
    const ClusterObservation ref = run_cluster_case(kc, /*reference=*/true);
    const ClusterObservation ff = run_cluster_case(kc, /*reference=*/false);
    expect_same_observation(ref, ff, info.name);
  }
}

// The analytic DMA window must reproduce the per-cycle grant pattern for
// every endpoint relation: distinct TCDM banks (1 cycle/beat), same TCDM
// bank (2 cycles/beat, one counted conflict per beat), L2 -> L2 (2
// cycles/beat, silent port stall), cross-region, and tail beats of odd
// lengths. Transfers drain with every core halted, the purest quiescent
// window.
TEST(FastForwardDiff, DmaDrainWindowsAreCycleExact) {
  struct Xfer {
    Addr src, dst;
    u32 len;
  };
  const std::vector<Xfer> xfers = {
      {cluster::kL2Base, cluster::kTcdmBase, 1021},            // L2 -> TCDM
      {cluster::kTcdmBase, cluster::kTcdmBase + 0x1004, 513},  // bank-distinct
      {cluster::kTcdmBase, cluster::kTcdmBase + 0x2000, 257},  // same bank
      {cluster::kL2Base, cluster::kL2Base + 0x4000, 255},      // L2 self
      {cluster::kTcdmBase + 0x400, cluster::kL2Base + 0x8000, 1024},
  };
  auto run = [&](bool reference) {
    cluster::ClusterParams params;
    params.reference_stepping = reference;
    Cluster cl(params);
    Rng rng(5);
    for (u32 i = 0; i < 4096; i += 4) {
      const u32 w = rng.next_u32();
      cl.bus().debug_store(cluster::kL2Base + i, 4, w);
      cl.bus().debug_store(cluster::kTcdmBase + i, 4, ~w);
    }
    for (const Xfer& x : xfers) cl.dma().enqueue(x.src, x.dst, x.len);
    ClusterObservation obs;
    obs.run_cycles = cl.run();  // cores all halted: run() just drains the DMA
    obs.stats = cl.stats();
    obs.tcdm_accesses = cl.tcdm().total_accesses();
    obs.tcdm_conflicts = cl.tcdm().total_conflicts();
    for (const Xfer& x : xfers) {
      for (u32 i = 0; i < x.len; ++i) {
        obs.output.push_back(static_cast<u8>(
            cl.bus().debug_load(x.dst + static_cast<Addr>(i), 1, false)));
      }
    }
    return obs;
  };
  expect_same_observation(run(true), run(false), "dma drain");
}

// WFE sleepers woken by DMA completion: the dominant quiescent pattern of
// double-buffered kernels. Three cores halt immediately; core 0 programs a
// large transfer and sleeps until the completion event.
TEST(FastForwardDiff, DmaWaitSleepIsCycleExact) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto other = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, other);
  bld.li(20, cluster::kL2Base);
  bld.li(21, cluster::kTcdmBase);
  bld.li(22, 16384);
  bld.dma_start(25, 20, 21, 22);
  const auto wait = bld.make_label();
  bld.bind(wait);
  bld.emit(Opcode::kLw, 26, 25, 0, 0x10);  // STATUS
  const auto done = bld.make_label();
  bld.branch(Opcode::kBeq, 26, codegen::zero, done);
  bld.emit(Opcode::kWfe);
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait);
  bld.bind(done);
  bld.eoc();
  bld.bind(other);
  bld.halt();
  const auto prog = bld.finalize();

  const ClusterObservation ref = run_program(prog, /*reference=*/true);
  const ClusterObservation ff = run_program(prog, /*reference=*/false);
  expect_same_observation(ref, ff, "dma wait");
  // The workload really is sleep-heavy (else this test proves little).
  EXPECT_GT(ff.stats.cores[0].sleep_cycles, 1000u);
}

// Barrier storm: cores park and wake through the HW synchronizer hundreds
// of times with skewed arrival orders. Exercises same-cycle/next-cycle wake
// visibility at every rotation position.
TEST(FastForwardDiff, BarrierHeavyIsCycleExact) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  // Each core spins id*7 nops between barriers so arrival order rotates.
  bld.li(2, 7);
  bld.emit(Opcode::kMul, 3, 1, 2, 0);
  bld.emit(Opcode::kAddi, 3, 3, 0, 1);
  bld.li(4, 200);
  bld.loop(4, 10, [&] {
    bld.loop(3, 11, [&] { bld.nop(); });
    bld.barrier();
  });
  bld.eoc();
  const auto prog = bld.finalize();

  const ClusterObservation ref = run_program(prog, /*reference=*/true);
  const ClusterObservation ff = run_program(prog, /*reference=*/false);
  expect_same_observation(ref, ff, "barrier heavy");
  EXPECT_EQ(ff.barriers_completed, 200u);
}

/// Everything observable after a full-system offload.
struct SystemObservation {
  u64 host_cycles = 0;
  system::HeteroStats stats;
  core::PerfCounters host_perf;
  cluster::ClusterStats cluster_stats;
  u64 tcdm_accesses = 0;
  std::vector<u8> output;
};

SystemObservation run_offload(const kernels::KernelCase& kc,
                              double mcu_hz, double pulp_hz,
                              bool reference) {
  system::HeteroSystemParams params;
  params.mcu_freq_hz = mcu_hz;
  params.pulp_freq_hz = pulp_hz;
  params.cluster_params.reference_stepping = reference;
  const system::FullSystemPackage pkg = system::package_offload(kc);
  system::HeteroSystem sys(params);
  sys.load_host_program(pkg.host_program);
  SystemObservation obs;
  obs.host_cycles = sys.run_to_host_halt();
  obs.stats = sys.stats();
  obs.host_perf = sys.host_core().perf();
  obs.cluster_stats = sys.soc().cluster().stats();
  obs.tcdm_accesses = sys.soc().cluster().tcdm().total_accesses();
  obs.output.resize(kc.output_bytes);
  for (size_t i = 0; i < kc.output_bytes; ++i) {
    obs.output[i] = static_cast<u8>(sys.host_sram().load(
        pkg.spec.host_output_addr + static_cast<Addr>(i), 1, false));
  }
  return obs;
}

void expect_same_system(const SystemObservation& ref,
                        const SystemObservation& ff,
                        const std::string& what) {
  EXPECT_EQ(ref.host_cycles, ff.host_cycles) << what;
  EXPECT_EQ(ref.stats.host_cycles, ff.stats.host_cycles) << what;
  EXPECT_EQ(ref.stats.cluster_cycles, ff.stats.cluster_cycles) << what;
  EXPECT_EQ(ref.stats.wire_bytes, ff.stats.wire_bytes) << what;
  EXPECT_EQ(ref.stats.wire_busy_host_cycles, ff.stats.wire_busy_host_cycles)
      << what;
  EXPECT_EQ(ref.stats.accel_started, ff.stats.accel_started) << what;
  expect_same_perf(ref.host_perf, ff.host_perf, what + " host");
  EXPECT_EQ(ref.cluster_stats.cycles, ff.cluster_stats.cycles) << what;
  ASSERT_EQ(ref.cluster_stats.cores.size(), ff.cluster_stats.cores.size());
  for (size_t i = 0; i < ref.cluster_stats.cores.size(); ++i) {
    expect_same_perf(ref.cluster_stats.cores[i], ff.cluster_stats.cores[i],
                     what + " cluster core " + std::to_string(i));
  }
  expect_same_dma(ref.cluster_stats.dma, ff.cluster_stats.dma, what + " dma");
  EXPECT_EQ(ref.cluster_stats.tcdm_conflicts, ff.cluster_stats.tcdm_conflicts)
      << what;
  EXPECT_EQ(ref.cluster_stats.icache_misses, ff.cluster_stats.icache_misses)
      << what;
  EXPECT_EQ(ref.tcdm_accesses, ff.tcdm_accesses) << what;
  EXPECT_EQ(ref.output, ff.output) << what;
}

// The full offload path — SPI image/input shipping, fetch-enable, cluster
// compute with the host asleep on EOC, result readback — at equal clocks
// and at the near-threshold-style asymmetric point where the MCU clock is
// 10x the PULP clock (the host fast-forward's worst/best case).
TEST(FastForwardDiff, FullSystemOffloadIsCycleExact) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(cfg.features, 4, Target::kCluster,
                                            77);
  {
    const auto ref = run_offload(kc, mhz(16), mhz(16), /*reference=*/true);
    const auto ff = run_offload(kc, mhz(16), mhz(16), /*reference=*/false);
    expect_same_system(ref, ff, "16/16");
    EXPECT_EQ(ff.output, kc.expected);
  }
  {
    const auto ref = run_offload(kc, mhz(80), mhz(8), /*reference=*/true);
    const auto ff = run_offload(kc, mhz(80), mhz(8), /*reference=*/false);
    expect_same_system(ref, ff, "80/8");
    EXPECT_EQ(ff.output, kc.expected);
  }
  {
    // PULP faster than the host: multiple cluster ticks per host cycle.
    const auto ref = run_offload(kc, mhz(16), mhz(64), /*reference=*/true);
    const auto ff = run_offload(kc, mhz(16), mhz(64), /*reference=*/false);
    expect_same_system(ref, ff, "16/64");
  }
}

// With trace sinks attached the fast path falls back to per-cycle sampling
// inside quiescent windows; the exported Chrome trace and the profile
// report must be byte-identical between modes.
TEST(FastForwardDiff, TracedOffloadProducesIdenticalTrace) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_svm_linear(cfg.features, 4, Target::kCluster,
                                           3);
  auto traced = [&](bool reference) {
    system::HeteroSystemParams params;
    params.cluster_params.reference_stepping = reference;
    const system::FullSystemPackage pkg = system::package_offload(kc);
    system::HeteroSystem sys(params);
    trace::EventTrace events;
    trace::MetricsRegistry metrics;
    sys.attach_trace({&events, &metrics});
    sys.load_host_program(pkg.host_program);
    sys.run_to_host_halt();
    std::ostringstream json;
    EXPECT_TRUE(trace::write_chrome_trace(events, json).ok());
    return json.str() + "\n---\n" + trace::profile_report(events, &metrics);
  };
  const std::string ref = traced(/*reference=*/true);
  const std::string ff = traced(/*reference=*/false);
  EXPECT_EQ(ref, ff);
}

// Traced cluster-only run (per-cycle DMA window fallback under tracing).
TEST(FastForwardDiff, TracedClusterRunProducesIdenticalTrace) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_cnn(cfg.features, 4, Target::kCluster, 9);
  auto traced = [&](bool reference) {
    cluster::ClusterParams params;
    params.reference_stepping = reference;
    Cluster cl(params);
    trace::EventTrace events;
    trace::MetricsRegistry metrics;
    cl.attach_trace({&events, &metrics});
    cl.load_program(kc.program);
    for (size_t i = 0; i < kc.input.size(); ++i) {
      cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                           kc.input[i]);
    }
    cl.run();
    std::ostringstream json;
    EXPECT_TRUE(trace::write_chrome_trace(events, json).ok());
    return json.str() + "\n---\n" + trace::profile_report(events, &metrics);
  };
  EXPECT_EQ(traced(true), traced(false));
}

// Interleaving advance() with manual step() and odd budgets must leave the
// same state as pure stepping: windows may end mid-transfer and mid-sleep.
TEST(FastForwardDiff, AdvanceWithArbitraryBudgetsIsCycleExact) {
  const auto cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_short(cfg.features, 4, Target::kCluster,
                                             21);
  auto run_chunked = [&](bool reference) {
    cluster::ClusterParams params;
    params.reference_stepping = reference;
    Cluster cl(params);
    cl.load_program(kc.program);
    for (size_t i = 0; i < kc.input.size(); ++i) {
      cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                           kc.input[i]);
    }
    // Prime-sized chunks so window boundaries land everywhere.
    u64 budget = 1;
    while (!cl.all_halted()) {
      cl.advance(budget);
      budget = budget % 97 + 13;
    }
    ClusterObservation obs;
    obs.run_cycles = cl.cycles();
    obs.stats = cl.stats();
    obs.tcdm_accesses = cl.tcdm().total_accesses();
    obs.tcdm_conflicts = cl.tcdm().total_conflicts();
    obs.barriers_completed = cl.events().barriers_completed();
    return obs;
  };
  expect_same_observation(run_chunked(true), run_chunked(false), "chunked");
}

}  // namespace
}  // namespace ulp
