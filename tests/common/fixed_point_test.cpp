#include "common/fixed_point.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ulp {
namespace {

TEST(Saturate, ClampsToNarrowRange) {
  EXPECT_EQ((saturate<i16, i64>(100000)), 32767);
  EXPECT_EQ((saturate<i16, i64>(-100000)), -32768);
  EXPECT_EQ((saturate<i16, i64>(1234)), 1234);
  EXPECT_EQ((saturate<i8, i32>(300)), 127);
  EXPECT_EQ((saturate<i8, i32>(-300)), -128);
}

TEST(Q16, FromDoubleRoundTrip) {
  const q16_t half = q16_t::from_double(0.5);
  EXPECT_NEAR(half.to_double(), 0.5, 1.0 / (1 << 11));
  const q16_t neg = q16_t::from_double(-3.25);
  EXPECT_NEAR(neg.to_double(), -3.25, 1.0 / (1 << 11));
}

TEST(Q16, FromDoubleSaturates) {
  EXPECT_EQ(q16_t::from_double(1000.0).raw, 32767);
  EXPECT_EQ(q16_t::from_double(-1000.0).raw, -32768);
}

TEST(Q16, MultiplicationMatchesDouble) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform01() * 4 - 2;
    const double b = rng.uniform01() * 4 - 2;
    const q16_t qa = q16_t::from_double(a);
    const q16_t qb = q16_t::from_double(b);
    const q16_t qp = qa * qb;
    // One LSB of quantisation per operand plus the truncating shift.
    EXPECT_NEAR(qp.to_double(), a * b, 0.01) << "a=" << a << " b=" << b;
  }
}

TEST(Q16, MultiplicationIsTruncatingShift) {
  // (3 * 5) >> 11 == 0: tiny products truncate toward zero from above.
  const q16_t a = q16_t::from_raw(3);
  const q16_t b = q16_t::from_raw(5);
  EXPECT_EQ((a * b).raw, 0);
  // Negative products truncate toward -inf (arithmetic shift).
  const q16_t c = q16_t::from_raw(-3);
  EXPECT_EQ((c * b).raw, -1);
}

TEST(Q16, AdditionWrapsLikeHardware) {
  const q16_t big = q16_t::from_raw(32767);
  const q16_t one = q16_t::from_raw(1);
  EXPECT_EQ((big + one).raw, -32768);  // wrap, matching the ISS add
}

TEST(Q32, MultiplicationMatchesDouble) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform01() * 200 - 100;
    const double b = rng.uniform01() * 200 - 100;
    const q32_t qa = q32_t::from_double(a);
    const q32_t qb = q32_t::from_double(b);
    EXPECT_NEAR((qa * qb).to_double(), a * b, 0.01);
  }
}

TEST(Q32, HighDynamicRange) {
  // hog needs values around +/- 30000 representable; q16 cannot do this.
  const q32_t v = q32_t::from_double(30000.0);
  EXPECT_NEAR(v.to_double(), 30000.0, 1e-3);
}

}  // namespace
}  // namespace ulp
