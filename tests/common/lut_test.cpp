#include "common/lut.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ulp {
namespace {

TEST(ExpLut, ApproximatesExpNeg) {
  const Lut16 lut = make_exp_neg_lut();
  for (double x = 0.0; x < 7.0; x += 0.05) {
    const i32 raw = q16_t::from_double(x).raw;
    const double y = q16_t::from_raw(lut.lookup(raw)).to_double();
    EXPECT_NEAR(y, std::exp(-x), 0.02) << "x=" << x;
  }
}

TEST(ExpLut, SaturatesAtDomainEnd) {
  const Lut16 lut = make_exp_neg_lut();
  // Far beyond the table domain the result clamps to the last entry (~0).
  const i32 raw = q16_t::from_double(15.9).raw;
  EXPECT_NEAR(q16_t::from_raw(lut.lookup(raw)).to_double(), 0.0, 0.01);
}

TEST(TanhLut, ApproximatesTanhIncludingSign) {
  const Lut16 lut = make_tanh_lut();
  for (double x = -3.5; x < 3.5; x += 0.03) {
    const i32 raw = q16_t::from_double(x).raw;
    const double y = q16_t::from_raw(tanh_lut_signed(lut, raw)).to_double();
    EXPECT_NEAR(y, std::tanh(x), 0.02) << "x=" << x;
  }
}

TEST(TanhLut, OddSymmetryExact) {
  const Lut16 lut = make_tanh_lut();
  for (i32 raw = 1; raw < 8000; raw += 37) {
    EXPECT_EQ(tanh_lut_signed(lut, raw), -tanh_lut_signed(lut, -raw));
  }
}

TEST(Isqrt64, ExactOnPerfectSquares) {
  for (u64 r = 0; r < 100000; r += 997) {
    EXPECT_EQ(isqrt64(r * r), r);
  }
}

TEST(Isqrt64, FloorProperty) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.next_u64() >> (rng.next_u32() % 40);
    const u64 r = isqrt64(v);
    EXPECT_LE(r * r, v);
    // (r+1)^2 > v, guarding against overflow of (r+1)^2.
    const u64 rp = r + 1;
    if (rp < (1ull << 32)) {
      EXPECT_GT(rp * rp, v);
    }
  }
}

TEST(Isqrt64, Extremes) {
  EXPECT_EQ(isqrt64(0), 0u);
  EXPECT_EQ(isqrt64(1), 1u);
  EXPECT_EQ(isqrt64(2), 1u);
  EXPECT_EQ(isqrt64(3), 1u);
  EXPECT_EQ(isqrt64(4), 2u);
  EXPECT_EQ(isqrt64(~u64{0}), 0xFFFFFFFFu);
}

TEST(Lut16, RejectsNegativeInput) {
  const Lut16 lut = make_exp_neg_lut();
  EXPECT_THROW((void)lut.lookup(-1), SimError);
}

}  // namespace
}  // namespace ulp
