#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace ulp {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const i32 v = rng.uniform(-128, 127);
    EXPECT_GE(v, -128);
    EXPECT_LE(v, 127);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(5);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 10000; ++i) {
    const i32 v = rng.uniform(0, 7);
    if (v == 0) saw_low = true;
    if (v == 7) saw_high = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace ulp
