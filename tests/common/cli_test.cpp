// Strict CLI numeric parsing: the whole token must be a number that fits,
// or the parse fails without touching the output. These parsers back every
// example binary's argv handling — an unguarded std::stoul here used to
// escape as an uncaught std::invalid_argument abort on e.g. `--seed 3x`.
#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace ulp::cli {
namespace {

TEST(CliParse, U64AcceptsPlainDecimals) {
  u64 v = 99;
  EXPECT_TRUE(parse_u64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", &v));
  EXPECT_EQ(v, ~0ull);
}

TEST(CliParse, U64Base0TakesHexAndOctal) {
  u64 v = 0;
  EXPECT_TRUE(parse_u64("0x1f", &v, ~0ull, 0));
  EXPECT_EQ(v, 0x1fu);
  EXPECT_TRUE(parse_u64("010", &v, ~0ull, 0));
  EXPECT_EQ(v, 8u);
  // Base 10 rejects the hex form outright (trailing garbage).
  EXPECT_FALSE(parse_u64("0x1f", &v));
}

TEST(CliParse, U64RejectsGarbageWithoutClobbering) {
  u64 v = 42;
  EXPECT_FALSE(parse_u64("", &v));
  EXPECT_FALSE(parse_u64(nullptr, &v));
  EXPECT_FALSE(parse_u64("12abc", &v));
  EXPECT_FALSE(parse_u64("abc", &v));
  EXPECT_FALSE(parse_u64(" 12", &v));
  EXPECT_FALSE(parse_u64("-", &v));
  EXPECT_FALSE(parse_u64("-4", &v));
  EXPECT_FALSE(parse_u64("+4", &v));
  EXPECT_FALSE(parse_u64("18446744073709551616", &v));  // 2^64: ERANGE
  EXPECT_EQ(v, 42u) << "failed parse must not write the output";
}

TEST(CliParse, U64HonoursCallerMax) {
  u64 v = 0;
  EXPECT_TRUE(parse_u64("1024", &v, 1024));
  EXPECT_FALSE(parse_u64("1025", &v, 1024));
}

TEST(CliParse, U32RangeChecks) {
  u32 v = 7;
  EXPECT_TRUE(parse_u32("4294967295", &v));
  EXPECT_EQ(v, ~0u);
  EXPECT_FALSE(parse_u32("4294967296", &v));
  EXPECT_FALSE(parse_u32("3x", &v));
  EXPECT_TRUE(parse_u32("32", &v, 32));
  EXPECT_FALSE(parse_u32("33", &v, 32));
}

TEST(CliParse, DoubleAcceptsUsualFormsRejectsPartials) {
  double d = 1.5;
  EXPECT_TRUE(parse_double("0.25", &d));
  EXPECT_EQ(d, 0.25);
  EXPECT_TRUE(parse_double("1e-4", &d));
  EXPECT_EQ(d, 1e-4);
  EXPECT_TRUE(parse_double("-2", &d));
  EXPECT_EQ(d, -2.0);
  EXPECT_FALSE(parse_double("", &d));
  EXPECT_FALSE(parse_double(nullptr, &d));
  EXPECT_FALSE(parse_double("1.5volts", &d));
  EXPECT_FALSE(parse_double("v1.5", &d));
  EXPECT_FALSE(parse_double(" 1.5", &d));
}

}  // namespace
}  // namespace ulp::cli
