// ClockRatio: exact rational clock-domain coupling. The class replaced a
// floating-point accumulator in HeteroSystem; these tests pin the tick
// schedule over long horizons for non-dyadic ratios (where a float
// accumulator drifts) and the equivalence between per-cycle tick() and the
// O(1) bulk forms the fast-forward scheduler uses.
#include "common/ratio.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"
#include "common/units.hpp"

namespace ulp {
namespace {

TEST(ClockRatio, ReducesToLowestTerms) {
  const ClockRatio r(mhz(8), mhz(80));
  EXPECT_EQ(r.numerator(), 1u);
  EXPECT_EQ(r.denominator(), 10u);
  const ClockRatio unity(mhz(16), mhz(16));
  EXPECT_EQ(unity.numerator(), 1u);
  EXPECT_EQ(unity.denominator(), 1u);
}

TEST(ClockRatio, IntegerRatiosTickEveryCycle) {
  ClockRatio r(mhz(64), mhz(16));  // 4 cluster ticks per host cycle
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(r.tick(), 4u);
  EXPECT_EQ(r.accumulator(), 0u);
}

// The regression this class exists for: a non-integer ratio held exact over
// ten million source cycles. 13 MHz target / 16 MHz source must yield
// exactly 13/16 * 10M = 8,125,000 ticks — no drift, accumulator bounded.
TEST(ClockRatio, NonIntegerRatioIsExactOverTenMillionCycles) {
  ClockRatio per_cycle(mhz(13), mhz(16));
  u64 ticks = 0;
  for (u64 c = 0; c < 10'000'000; ++c) {
    const u64 k = per_cycle.tick();
    EXPECT_LE(k, 1u);  // target slower than source: never two per cycle
    ticks += k;
    ASSERT_LT(per_cycle.accumulator(), per_cycle.denominator());
  }
  EXPECT_EQ(ticks, 8'125'000u);

  ClockRatio bulk(mhz(13), mhz(16));
  EXPECT_EQ(bulk.tick_many(10'000'000), 8'125'000u);
  EXPECT_EQ(bulk.accumulator(), per_cycle.accumulator());
}

TEST(ClockRatio, BulkAndPerCycleAgreeAtEveryPrefix) {
  ClockRatio a(mhz(13), mhz(16));
  ClockRatio b(mhz(13), mhz(16));
  u64 ticks_a = 0;
  u64 ticks_b = 0;
  u64 stride = 1;
  u64 advanced = 0;
  while (advanced < 100'000) {
    for (u64 i = 0; i < stride; ++i) ticks_a += a.tick();
    ticks_b += b.tick_many(stride);
    advanced += stride;
    EXPECT_EQ(ticks_a, ticks_b) << "after " << advanced << " cycles";
    EXPECT_EQ(a.accumulator(), b.accumulator());
    stride = stride % 89 + 7;  // prime-ish strides hit all phases
  }
}

TEST(ClockRatio, CyclesToNextTickIsTight) {
  ClockRatio r(mhz(8), mhz(80));
  for (int round = 0; round < 1000; ++round) {
    const u64 wait = r.cycles_to_next_tick();
    ASSERT_GE(wait, 1u);
    // One cycle short of the stride: still no tick.
    ClockRatio probe = r;
    if (wait > 1) EXPECT_EQ(probe.tick_many(wait - 1), 0u);
    // The full stride delivers at least one.
    EXPECT_GE(r.tick_many(wait), 1u);
  }
}

TEST(ClockRatio, FasterTargetYieldsMultipleTicks) {
  ClockRatio r(mhz(64), mhz(16));
  EXPECT_EQ(r.cycles_to_next_tick(), 1u);
  EXPECT_EQ(r.tick_many(250), 1000u);
}

// consume_ticks is the host-domain fast-forward stride: it must land on
// exactly the source cycle whose batch delivers the wanted tick, leaving
// the accumulator as if tick() had run cycle by cycle.
TEST(ClockRatio, ConsumeTicksMatchesPerCycleSchedule) {
  ClockRatio bulk(mhz(13), mhz(16));
  ClockRatio per_cycle(mhz(13), mhz(16));
  u64 want = 1;
  u64 got_bulk = 0;
  u64 got_per_cycle = 0;
  u64 cycles_bulk = 0;
  u64 cycles_per_cycle = 0;
  for (int round = 0; round < 2000; ++round) {
    const ClockRatio::TickRun run = bulk.consume_ticks(want);
    got_bulk += run.ticks;
    cycles_bulk += run.cycles;
    while (got_per_cycle < got_bulk) {
      got_per_cycle += per_cycle.tick();
      ++cycles_per_cycle;
    }
    ASSERT_EQ(got_per_cycle, got_bulk) << "round " << round;
    ASSERT_EQ(cycles_per_cycle, cycles_bulk) << "round " << round;
    ASSERT_EQ(per_cycle.accumulator(), bulk.accumulator());
    ASSERT_GE(run.ticks, want);
    want = want % 37 + 1;
  }
}

TEST(ClockRatio, ConsumeTicksBatchesOnFasterTarget) {
  ClockRatio r(mhz(64), mhz(16));  // 4 ticks per source cycle
  const ClockRatio::TickRun run = r.consume_ticks(3);
  EXPECT_EQ(run.cycles, 1u);  // the batch is indivisible
  EXPECT_EQ(run.ticks, 4u);
}

TEST(ClockRatio, TicksWithinPredictsWithoutAdvancing) {
  ClockRatio r(mhz(13), mhz(16));
  (void)r.tick_many(7);
  const u64 before = r.accumulator();
  const u64 predicted = r.ticks_within(1000);
  EXPECT_EQ(r.accumulator(), before);
  EXPECT_EQ(r.tick_many(1000), predicted);
}

TEST(ClockRatio, ResetRestartsTheSchedule) {
  ClockRatio r(mhz(13), mhz(16));
  (void)r.tick_many(5);
  EXPECT_NE(r.accumulator(), 0u);
  r.reset();
  EXPECT_EQ(r.accumulator(), 0u);
  EXPECT_EQ(r.tick_many(16), 13u);
}

TEST(ClockRatio, RejectsNonIntegralAndNonPositiveFrequencies) {
  EXPECT_THROW(ClockRatio(0.5, mhz(16)), SimError);
  EXPECT_THROW(ClockRatio(mhz(16), -1.0), SimError);
  EXPECT_THROW(ClockRatio(mhz(16), 0.0), SimError);
}

}  // namespace
}  // namespace ulp
