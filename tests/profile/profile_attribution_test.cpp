// Attribution correctness of the cycle profiler.
//
// Two properties anchor the whole subsystem and are asserted here over
// every workload class:
//
//  * conservation — every cycle a core observes lands in exactly one stall
//    bucket, and the per-pc cycle attribution (plus halted time, which is
//    attributed to no pc) sums back to the core's cycle counter;
//  * mode identity — the profile captured under the per-cycle reference
//    scheduler is *bit-identical* (via the deterministic JSON form) to the
//    one captured under quiescence fast-forward, for Table I kernels, DMA
//    drain shapes, barrier storms and faulty-link retry runs.
//
// `ctest -L profile` runs this suite.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "codegen/builder.hpp"
#include "kernels/kernel.hpp"
#include "link/fault_injector.hpp"
#include "profile/profile.hpp"
#include "profile/report.hpp"
#include "runtime/offload.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace ulp {
namespace {

using cluster::Cluster;
using codegen::Builder;
using isa::Opcode;
using kernels::Target;

/// Runs one cluster program under a profiler in the given stepping mode.
profile::DomainProfile profile_program(const isa::Program& prog,
                                       const std::vector<u8>& input,
                                       Addr input_addr, bool reference,
                                       u32 num_cores = 4) {
  cluster::ClusterParams params;
  params.num_cores = num_cores;
  params.reference_stepping = reference;
  Cluster cl(params);
  profile::ClusterProfiler prof;
  prof.attach(cl);
  cl.load_program(prog);
  for (size_t i = 0; i < input.size(); ++i) {
    cl.bus().debug_store(input_addr + static_cast<Addr>(i), 1, input[i]);
  }
  cl.run();
  prof.capture();
  return prof.data();
}

profile::DomainProfile profile_case(const kernels::KernelCase& kc,
                                    bool reference) {
  return profile_program(kc.program, kc.input, kc.input_addr, reference);
}

void expect_conserved(const profile::DomainProfile& d,
                      const std::string& what) {
  EXPECT_TRUE(d.conserved()) << what;
  for (size_t i = 0; i < d.cores.size(); ++i) {
    const profile::CoreProfileData& c = d.cores[i];
    EXPECT_EQ(c.buckets().total(), c.perf.cycles)
        << what << " core " << i << ": bucket decomposition must cover "
        << "every cycle exactly once";
    u64 attributed = 0;
    u64 retired = 0;
    for (const profile::PcCount& p : c.pcs) {
      attributed += p.cycles;
      retired += p.instrs;
    }
    EXPECT_EQ(attributed + c.perf.halted_cycles,
              c.perf.cycles + c.busy_remaining)
        << what << " core " << i;
    EXPECT_EQ(retired, c.perf.instrs) << what << " core " << i;
    // Frame cycles shadow pc cycles: each attribution lands in one pc slot
    // and one call-tree frame.
    u64 frame_cycles = 0;
    for (const profile::PcProfile::Frame& f : c.frames) {
      frame_cycles += f.cycles;
    }
    EXPECT_EQ(frame_cycles, attributed) << what << " core " << i;
  }
}

void expect_identical(const profile::DomainProfile& ref,
                      const profile::DomainProfile& ff,
                      const std::string& what) {
  EXPECT_EQ(profile::to_json(ref), profile::to_json(ff)) << what;
}

// Every Table I kernel: conservation in both modes, bit-identical profiles
// across modes, and a sane hotspot census (instructions actually landed).
TEST(ProfileAttribution, TableOneKernelsConserveAndMatchAcrossModes) {
  const auto cfg = core::or10n_config();
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    const auto kc = info.factory(cfg.features, 4, Target::kCluster, 7);
    const profile::DomainProfile ref = profile_case(kc, /*reference=*/true);
    const profile::DomainProfile ff = profile_case(kc, /*reference=*/false);
    expect_conserved(ref, info.name + " (ref)");
    expect_conserved(ff, info.name + " (ff)");
    expect_identical(ref, ff, info.name);
    EXPECT_GT(ref.cores[0].perf.instrs, 0u) << info.name;
    EXPECT_FALSE(ref.code.empty()) << info.name;
  }
}

TEST(ProfileAttribution, ExtensionKernelsConserveAndMatchAcrossModes) {
  const auto cfg = core::or10n_config();
  for (const kernels::KernelInfo& info : kernels::extension_kernels()) {
    const auto kc = info.factory(cfg.features, 4, Target::kCluster, 11);
    const profile::DomainProfile ref = profile_case(kc, /*reference=*/true);
    const profile::DomainProfile ff = profile_case(kc, /*reference=*/false);
    expect_conserved(ref, info.name + " (ref)");
    expect_conserved(ff, info.name + " (ff)");
    expect_identical(ref, ff, info.name);
  }
}

// WFE sleep on DMA completion — the fast-forward scheduler bulk-advances
// these windows, and the profiler must attribute them to the sleeping pc
// and the dma_wait bucket identically in both modes.
TEST(ProfileAttribution, DmaWaitSleepAttributesIdentically) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto other = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, other);
  bld.li(20, cluster::kL2Base);
  bld.li(21, cluster::kTcdmBase);
  bld.li(22, 16384);
  bld.dma_start(25, 20, 21, 22);
  const auto wait = bld.make_label();
  bld.bind(wait);
  bld.emit(Opcode::kLw, 26, 25, 0, 0x10);  // STATUS
  const auto done = bld.make_label();
  bld.branch(Opcode::kBeq, 26, codegen::zero, done);
  bld.emit(Opcode::kWfe);
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, wait);
  bld.bind(done);
  bld.eoc();
  bld.bind(other);
  bld.halt();
  const auto prog = bld.finalize();

  const auto ref = profile_program(prog, {}, 0, /*reference=*/true);
  const auto ff = profile_program(prog, {}, 0, /*reference=*/false);
  expect_conserved(ref, "dma wait (ref)");
  expect_conserved(ff, "dma wait (ff)");
  expect_identical(ref, ff, "dma wait");
  // The WFE windows must land in the dma_wait bucket, not event_wait: the
  // core sleeps with a DMA transfer outstanding.
  EXPECT_GT(ref.cores[0].buckets().dma_wait, 1000u);
  EXPECT_EQ(ref.cores[0].buckets().event_wait, 0u);
}

// Barrier storm: hundreds of park/wake rounds with skewed arrivals. The
// sleep windows must all land in the barrier bucket, identically across
// modes.
TEST(ProfileAttribution, BarrierStormAttributesIdentically) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.li(2, 200);
  const auto loop = bld.make_label();
  bld.bind(loop);
  // Skew arrival: core i burns i*3 add cycles before the barrier.
  bld.li(3, 3);
  bld.emit(Opcode::kMul, 4, 1, 3);
  const auto spin = bld.make_label();
  bld.bind(spin);
  bld.emit(Opcode::kAddi, 4, 4, 0, -1);
  bld.branch(Opcode::kBge, 4, codegen::zero, spin);
  bld.barrier();
  bld.emit(Opcode::kAddi, 2, 2, 0, -1);
  bld.branch(Opcode::kBne, 2, codegen::zero, loop);
  const auto fin = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, fin);
  bld.eoc();
  bld.bind(fin);
  bld.halt();
  const auto prog = bld.finalize();

  const auto ref = profile_program(prog, {}, 0, /*reference=*/true);
  const auto ff = profile_program(prog, {}, 0, /*reference=*/false);
  expect_conserved(ref, "barrier storm (ref)");
  expect_conserved(ff, "barrier storm (ff)");
  expect_identical(ref, ff, "barrier storm");
  EXPECT_GT(ref.buckets().barrier, 0u);
}

// Faulty-link robust offload: watchdog expiries re-boot the cluster
// mid-run, CRC rejects force retransmissions. The captured profile (the
// final kernel execution) must still conserve and stay mode-identical.
TEST(ProfileAttribution, FaultyLinkRetriesStayModeIdentical) {
  const auto cfg = core::or10n_config();
  const kernels::KernelInfo& info = kernels::all_kernels().front();
  const auto kc = info.factory(cfg.features, 4, Target::kCluster, 3);

  auto run = [&](bool reference) {
    const host::McuSpec& mcu = host::stm32l476();
    link::SpiLinkConfig lcfg;
    lcfg.lanes = mcu.spi_lanes;
    lcfg.max_freq_hz = mcu.spi_max_hz;
    runtime::OffloadSession session(mcu, mhz(16), link::SpiLink(lcfg));
    session.set_reference_stepping(reference);
    link::FaultConfig fcfg;
    const Status ps = link::FaultInjector::parse("seed=5,flip=2e-5", &fcfg);
    EXPECT_TRUE(ps.ok()) << ps.message();
    link::FaultInjector injector(fcfg);
    session.attach_faults(&injector);
    profile::ClusterProfiler prof;
    session.attach_profile(&prof);
    const power::OperatingPoint op{0.5, mhz(16)};
    const runtime::OffloadOutcome out =
        runtime::run_with_host_fallback(session, kc.offload_request(), op, 4);
    EXPECT_EQ(out.output, kc.expected);
    return profile::to_json(prof.data());
  };

  const std::string ref = run(true);
  const std::string ff = run(false);
  EXPECT_EQ(ref, ff);
  EXPECT_NE(ref.find("\"conserved\":true"), std::string::npos);
}

// Co-simulated offload: the host MCU profile must conserve too, with the
// link-bound bucket a subset of its active cycles, and both domains must
// be mode-identical.
TEST(ProfileAttribution, CosimHostProfileConservesAndMatchesAcrossModes) {
  const auto cfg = core::or10n_config();
  const kernels::KernelInfo& info = kernels::all_kernels().front();
  const auto kc = info.factory(cfg.features, 4, Target::kCluster, 9);
  const system::FullSystemPackage pkg = system::package_offload(kc);

  auto run = [&](bool reference) {
    system::HeteroSystemParams params;
    params.mcu_freq_hz = mhz(16);
    params.pulp_freq_hz = mhz(16);
    params.cluster_params.reference_stepping = reference;
    system::HeteroSystem sys(params);
    profile::ClusterProfiler cluster_prof;
    profile::CoreProfiler host_prof;
    cluster_prof.attach(sys.soc().cluster());
    host_prof.attach(sys.host_core());
    const system::SystemOffloadResult res =
        system::run_offload_with_fallback(sys, pkg);
    EXPECT_EQ(res.output, kc.expected);
    cluster_prof.capture();
    host_prof.capture(sys.host_program(),
                      sys.stats().host_link_bound_cycles);
    profile::JobProfile jp;
    jp.collected = true;
    jp.cluster = cluster_prof.data();
    jp.has_host = true;
    jp.host = host_prof.data();
    return jp;
  };

  const profile::JobProfile ref = run(true);
  const profile::JobProfile ff = run(false);
  expect_conserved(ref.cluster, "cosim cluster (ref)");
  expect_conserved(ref.host, "cosim host (ref)");
  EXPECT_EQ(profile::to_json(ref), profile::to_json(ff));
  // The host driver polls/streams while the wire moves bytes: the run must
  // observe link-bound execute cycles, and they stay within active time.
  const profile::CycleBuckets hb = ref.host.buckets();
  EXPECT_GT(hb.link_bound, 0u);
  EXPECT_LE(hb.link_bound, ref.host.cores[0].perf.active_cycles);
}

// Call-tree frames: a jal/jalr subroutine pair must produce a child frame
// keyed by the callee entry pc, and popping on return (the kernels with
// subroutines — matmul_tiled, strassen, hog — also exercise this path in
// the kernel sweep above).
TEST(ProfileAttribution, JalJalrBuildsCallTree) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  const auto other = bld.make_label();
  bld.branch(Opcode::kBne, 1, codegen::zero, other);
  const auto callee = bld.make_label();
  bld.li(5, 10);
  const auto loop = bld.make_label();
  bld.bind(loop);
  bld.jal(31, callee);  // call
  bld.emit(Opcode::kAddi, 5, 5, 0, -1);
  bld.branch(Opcode::kBne, 5, codegen::zero, loop);
  bld.eoc();
  bld.bind(callee);
  bld.emit(Opcode::kAddi, 6, 6, 0, 1);
  bld.emit(Opcode::kJalr, 0, 31, 0);  // return
  bld.branch(Opcode::kBeq, codegen::zero, codegen::zero, loop);  // unreached
  bld.bind(other);
  bld.halt();
  const auto prog = bld.finalize();

  const auto d = profile_program(prog, {}, 0, /*reference=*/false, 1);
  expect_conserved(d, "call tree");
  ASSERT_GE(d.cores[0].frames.size(), 2u);
  // Exactly one non-root frame: the callee, child of root, entered 10x.
  bool found_callee = false;
  for (size_t i = 1; i < d.cores[0].frames.size(); ++i) {
    const auto& f = d.cores[0].frames[i];
    if (f.parent == 0 && f.cycles > 0) found_callee = true;
  }
  EXPECT_TRUE(found_callee);
  EXPECT_EQ(d.cores[0].truncated_calls, 0u);
}

// An aborted run (cycle budget expires mid-kernel) must still conserve:
// cycles attributed at issue but not yet consumed are reported as
// busy_remaining.
TEST(ProfileAttribution, AbortedRunConservesViaBusyRemaining) {
  const auto cfg = core::or10n_config();
  const kernels::KernelInfo& info = kernels::all_kernels().front();
  const auto kc = info.factory(cfg.features, 4, Target::kCluster, 7);
  cluster::ClusterParams params;
  params.reference_stepping = true;
  Cluster cl(params);
  profile::ClusterProfiler prof;
  prof.attach(cl);
  cl.load_program(kc.program);
  for (size_t i = 0; i < kc.input.size(); ++i) {
    cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                         kc.input[i]);
  }
  for (int i = 0; i < 500; ++i) cl.step();  // abandon mid-run
  prof.capture();
  expect_conserved(prof.data(), "aborted run");
}

}  // namespace
}  // namespace ulp
