// Campaign-level profile aggregation: the `profile = 1` campaign knob,
// per-job conservation on both engines, and the determinism contract —
// batch::profile_json byte-identical across worker counts and across
// reference/fast-forward stepping. `ctest -L profile` runs this suite.
#include <gtest/gtest.h>

#include <string>

#include "batch/aggregate.hpp"
#include "batch/campaign.hpp"
#include "batch/engine.hpp"
#include "profile/report.hpp"

namespace ulp {
namespace {

batch::RunOptions with_workers(u32 n) {
  batch::RunOptions options;
  options.workers = n;
  return options;
}

batch::CampaignSpec small_profiled_spec() {
  batch::CampaignSpec spec;
  spec.kernels = {"matmul"};
  spec.num_cores = {1, 4};
  spec.repeats = 2;
  spec.base_seed = 9;
  spec.collect_profile = true;
  return spec;
}

TEST(ProfileCampaign, ParserAcceptsProfileKey) {
  batch::CampaignSpec spec;
  ASSERT_TRUE(
      batch::parse_campaign_text("kernels = matmul\nprofile = 1\n", &spec)
          .ok());
  EXPECT_TRUE(spec.collect_profile);

  batch::CampaignSpec off;
  ASSERT_TRUE(
      batch::parse_campaign_text("kernels = matmul\nprofile = 0\n", &off)
          .ok());
  EXPECT_FALSE(off.collect_profile);
}

TEST(ProfileCampaign, ExpandStampsCollectProfileOnEveryJob) {
  const auto jobs = batch::expand(small_profiled_spec());
  ASSERT_EQ(jobs.size(), 4u);
  for (const auto& j : jobs) EXPECT_TRUE(j.collect_profile);
}

TEST(ProfileCampaign, AnalyticJobsCollectConservedProfiles) {
  const batch::CampaignResult result =
      batch::run_campaign(small_profiled_spec(), with_workers(0));
  ASSERT_EQ(result.jobs.size(), 4u);
  for (const auto& j : result.jobs) {
    ASSERT_TRUE(j.status.ok()) << j.spec.label();
    ASSERT_TRUE(j.profile.collected) << j.spec.label();
    EXPECT_FALSE(j.profile.has_host) << "analytic engine has no host core";
    EXPECT_TRUE(j.profile.cluster.conserved()) << j.spec.label();
    // The profile saw real work, not an empty capture.
    u64 instrs = 0;
    for (const auto& c : j.profile.cluster.cores) instrs += c.perf.instrs;
    EXPECT_GT(instrs, 0u) << j.spec.label();
  }
}

TEST(ProfileCampaign, UnprofiledCampaignLeavesProfilesEmpty) {
  batch::CampaignSpec spec = small_profiled_spec();
  spec.collect_profile = false;
  spec.num_cores = {4};
  spec.repeats = 1;
  const batch::CampaignResult result = batch::run_campaign(spec, {});
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].profile.collected);
  // profile_json still emits a (job-less) document.
  const std::string json = batch::profile_json(result);
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  EXPECT_EQ(json.find("\"collected\""), std::string::npos);
}

// The headline determinism contract: the aggregated profile document is
// byte-identical whether the campaign ran inline, on one worker or four.
TEST(ProfileCampaign, ProfileJsonByteIdenticalAcrossWorkerCounts) {
  const batch::CampaignSpec spec = small_profiled_spec();
  const std::string inline_json =
      batch::profile_json(batch::run_campaign(spec, with_workers(0)));
  const std::string one_worker =
      batch::profile_json(batch::run_campaign(spec, with_workers(1)));
  const std::string four_workers =
      batch::profile_json(batch::run_campaign(spec, with_workers(4)));
  EXPECT_EQ(inline_json, one_worker);
  EXPECT_EQ(inline_json, four_workers);
  EXPECT_NE(inline_json.find("\"groups\""), std::string::npos);
  EXPECT_NE(inline_json.find("matmul/cores4"), std::string::npos);
}

// Attribution lumps whole instruction costs at their charge points, so the
// fast-forward scheduler must reproduce the reference profile bit for bit
// — campaign-wide, not just per session.
TEST(ProfileCampaign, ProfileJsonByteIdenticalAcrossSteppingModes) {
  batch::CampaignSpec ref = small_profiled_spec();
  ref.reference_stepping = true;
  batch::CampaignSpec ff = small_profiled_spec();
  ff.reference_stepping = false;
  const std::string ref_json =
      batch::profile_json(batch::run_campaign(ref, {}));
  const std::string ff_json = batch::profile_json(batch::run_campaign(ff, {}));
  EXPECT_EQ(ref_json, ff_json);
}

TEST(ProfileCampaign, CosimJobsCollectHostAndClusterProfiles) {
  batch::CampaignSpec spec;
  spec.engine = batch::Engine::kCosim;
  spec.kernels = {"matmul"};
  spec.num_cores = {4};
  spec.collect_profile = true;
  const batch::CampaignResult result = batch::run_campaign(spec, {});
  ASSERT_EQ(result.jobs.size(), 1u);
  const auto& j = result.jobs[0];
  ASSERT_TRUE(j.status.ok()) << j.status.message();
  ASSERT_TRUE(j.profile.collected);
  ASSERT_TRUE(j.profile.has_host);
  EXPECT_TRUE(j.profile.cluster.conserved());
  EXPECT_TRUE(j.profile.host.conserved());
  // The host profile carries link-bound stall cycles from the offload.
  EXPECT_GT(j.profile.host.buckets().link_bound, 0u);
  const std::string json = profile::to_json(j.profile);
  EXPECT_NE(json.find("\"host\""), std::string::npos);
}

}  // namespace
}  // namespace ulp
