// Report emitters, the cross-clock-domain export rebase, the event-trace
// ring buffer, the metrics JSON emitter and the derived power timeline.
// `ctest -L profile` runs this suite.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "kernels/kernel.hpp"
#include "profile/energy_timeline.hpp"
#include "profile/profile.hpp"
#include "profile/report.hpp"
#include "trace/event_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"

namespace ulp {
namespace {

using kernels::Target;

profile::DomainProfile profile_first_kernel() {
  const auto cfg = core::or10n_config();
  const kernels::KernelInfo& info = kernels::all_kernels().front();
  const auto kc = info.factory(cfg.features, 4, Target::kCluster, 7);
  cluster::Cluster cl(cluster::ClusterParams{});
  profile::ClusterProfiler prof;
  prof.attach(cl);
  cl.load_program(kc.program);
  for (size_t i = 0; i < kc.input.size(); ++i) {
    cl.bus().debug_store(kc.input_addr + static_cast<Addr>(i), 1,
                         kc.input[i]);
  }
  cl.run();
  prof.capture();
  return prof.data();
}

TEST(ProfileReport, AnnotatedDisassemblyListsEveryExecutedLine) {
  const profile::DomainProfile d = profile_first_kernel();
  const std::string full = profile::annotated_disassembly(d);
  // The unbounded listing annotates the whole program, one line per pc.
  size_t lines = 0;
  for (const char ch : full) lines += ch == '\n';
  EXPECT_EQ(lines, d.code.size() + 1) << "header + one line per code word";

  const std::string top = profile::annotated_disassembly(d, 5);
  size_t top_lines = 0;
  for (const char ch : top) top_lines += ch == '\n';
  EXPECT_EQ(top_lines, 6u) << "header + the 5 hottest lines";
  EXPECT_NE(full.find("cycles"), std::string::npos);
}

TEST(ProfileReport, FoldedStacksSumToAttributedCycles) {
  const profile::DomainProfile d = profile_first_kernel();
  const std::string folded = profile::folded_stacks(d);
  ASSERT_FALSE(folded.empty());
  u64 folded_sum = 0;
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_EQ(line.compare(0, 3, "all"), 0) << line;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    folded_sum += std::stoull(line.substr(sp + 1));
  }
  u64 attributed = 0;
  for (const auto& c : d.cores) {
    for (const auto& p : c.pcs) attributed += p.cycles;
  }
  EXPECT_EQ(folded_sum, attributed);
}

TEST(ProfileReport, BucketTableRowsConserve) {
  const profile::DomainProfile d = profile_first_kernel();
  const std::string table = profile::bucket_table(d);
  EXPECT_NE(table.find("execute"), std::string::npos);
  EXPECT_NE(table.find("barrier"), std::string::npos);
  EXPECT_NE(table.find("all"), std::string::npos);
  // The machine-checkable form of the same statement:
  EXPECT_EQ(d.buckets().total(), [&] {
    u64 total = 0;
    for (const auto& c : d.cores) total += c.perf.cycles;
    return total;
  }());
}

TEST(ProfileReport, ToJsonIsDeterministic) {
  const profile::DomainProfile a = profile_first_kernel();
  const profile::DomainProfile b = profile_first_kernel();
  EXPECT_EQ(profile::to_json(a), profile::to_json(b));
  EXPECT_NE(profile::to_json(a).find("\"conserved\":true"),
            std::string::npos);
}

// Two tracks at different clock rates stamping the *same* instant of real
// time must export the exact same timestamp. 48 MHz is the interesting
// rate: 1e12/48e6 is not an integer, so the old per-track double
// conversion rounded host and cluster spans apart.
TEST(ProfileReport, CrossClockTimestampsRebaseExactly) {
  trace::EventTrace trace;
  const auto a = trace.add_track("a", 16e6);
  const auto b = trace.add_track("b", 48e6);
  for (u64 k = 1; k <= 100; ++k) {
    trace.instant(a, "tick", k * 16);      // k microseconds
    trace.instant(b, "tick", k * 48);      // the same k microseconds
  }
  std::ostringstream os;
  ASSERT_TRUE(trace::write_chrome_trace(trace, os).ok());
  const std::string json = os.str();
  // Collect "ts":... per tid in event order; they must match pairwise.
  std::vector<std::string> ts_a;
  std::vector<std::string> ts_b;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"i\"", pos)) != std::string::npos) {
    const size_t tid = json.find("\"tid\":", pos) + 6;
    const size_t ts = json.find("\"ts\":", pos) + 5;
    const size_t end = json.find_first_of(",}", ts);
    (json[tid] == '0' ? ts_a : ts_b).push_back(json.substr(ts, end - ts));
    pos = end;
  }
  ASSERT_EQ(ts_a.size(), 100u);
  ASSERT_EQ(ts_b.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ts_a[i], ts_b[i]) << "microsecond " << i + 1;
  }
}

TEST(ProfileReport, EventTraceRingBufferDropsOldestClosedOnly) {
  trace::EventTrace trace;
  trace.set_event_limit(32);
  const auto t = trace.add_track("t");
  trace.begin(t, "open-span", 0);  // stays open across every eviction
  for (u64 i = 0; i < 200; ++i) trace.instant(t, "i", i + 1);
  EXPECT_LE(trace.num_events(), 32u);
  EXPECT_EQ(trace.dropped_events(), 201 - trace.num_events());
  // The open span survived every compaction and its stack index still
  // resolves: end() closes it, not some remapped victim.
  bool open_found = false;
  for (const auto& e : trace.events()) open_found |= e.open;
  EXPECT_TRUE(open_found);
  trace.end(t, 500);
  for (const auto& e : trace.events()) EXPECT_FALSE(e.open);
  // Survivors are the newest instants, in order.
  u64 prev = 0;
  for (const auto& e : trace.events()) {
    if (e.kind != trace::EventTrace::EventKind::kInstant) continue;
    EXPECT_GT(e.begin_tick, prev);
    prev = e.begin_tick;
  }
  EXPECT_EQ(prev, 200u);
}

TEST(ProfileReport, MetricsJsonIsDeterministicAndSorted) {
  auto build = [] {
    trace::MetricsRegistry reg;
    reg.counter("z.last").add(3);
    reg.counter("a.first").add(7);
    reg.gauge("g.v").set(0.25);
    auto& h = reg.histogram("h.samples");
    h.record(0);
    h.record(5);
    h.record(1000);
    return trace::metrics_to_json(reg);
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  EXPECT_LT(json.find("a.first"), json.find("z.last")) << "map order";
  EXPECT_NE(json.find("\"g.v\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":1005"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// The derived power timeline: run spans on core/host tracks become
// piecewise-constant watt counters on power.* tracks.
TEST(ProfileReport, PowerTracksFollowSpanActivity) {
  trace::EventTrace trace;
  const auto c0 = trace.add_track("cluster.core0", 16e6);
  const auto c1 = trace.add_track("cluster.core1", 16e6);
  const auto host = trace.add_track("host.mcu", 16e6);
  trace.complete(c0, "run", 0, 100);
  trace.complete(c1, "run", 50, 100);
  trace.complete(host, "run", 0, 80);
  trace.complete(host, "sleep", 80, 120);

  profile::PowerTimelineSpec spec;
  spec.op = {0.5, mhz(16)};
  spec.num_cluster_cores = 2;
  spec.host_active_w = 1e-3;
  spec.host_sleep_w = 2e-6;
  profile::add_power_tracks(trace, spec);

  int cluster_track = -1;
  int host_track = -1;
  for (size_t t = 0; t < trace.tracks().size(); ++t) {
    if (trace.tracks()[t].name == "power.cluster") {
      cluster_track = static_cast<int>(t);
    }
    if (trace.tracks()[t].name == "power.host") {
      host_track = static_cast<int>(t);
    }
  }
  ASSERT_GE(cluster_track, 0);
  ASSERT_GE(host_track, 0);

  std::vector<double> cluster_w;
  std::vector<double> host_w;
  for (const auto& e : trace.events()) {
    if (e.kind != trace::EventTrace::EventKind::kCounter) continue;
    if (e.track == static_cast<u32>(cluster_track)) {
      cluster_w.push_back(e.value);
    }
    if (e.track == static_cast<u32>(host_track)) host_w.push_back(e.value);
  }
  // Cluster activity steps 1 -> 2 -> 1 -> 0 running cores: power must rise
  // with the overlap and fall back; all samples positive (idle cores leak).
  ASSERT_GE(cluster_w.size(), 4u);
  double w_min = cluster_w[0];
  double w_max = cluster_w[0];
  for (const double w : cluster_w) {
    EXPECT_GT(w, 0.0);
    w_min = std::min(w_min, w);
    w_max = std::max(w_max, w);
  }
  EXPECT_GT(w_max, w_min);
  // Host: active watts then the sleep floor.
  ASSERT_GE(host_w.size(), 2u);
  EXPECT_DOUBLE_EQ(host_w.front(), 1e-3);
  EXPECT_DOUBLE_EQ(host_w.back(), 2e-6);
}

}  // namespace
}  // namespace ulp
