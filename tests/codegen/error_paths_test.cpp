// Error-path coverage for the assembler and Builder: malformed source,
// out-of-range immediates, misuse of labels and loops — everything must
// fail loudly (SimError) instead of emitting a corrupt program. Also pins
// the assemble(disassemble(x)) == x contract across every opcode.
#include <gtest/gtest.h>

#include <sstream>

#include "codegen/assembler.hpp"
#include "codegen/builder.hpp"
#include "common/status.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace ulp::codegen {
namespace {

using isa::Opcode;

void expect_asm_error(std::string_view src, const std::string& needle) {
  try {
    (void)assemble(src);
    FAIL() << "assembled without error: " << src;
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(AssemblerErrors, UnknownMnemonic) {
  expect_asm_error("frobnicate r1, r2, r3\n", "unknown mnemonic");
}

TEST(AssemblerErrors, BadRegisterName) {
  expect_asm_error("add r1, r2, r32\n", "register");
  expect_asm_error("add r1, rx, r3\n", "register");
}

TEST(AssemblerErrors, WrongOperandCount) {
  expect_asm_error("add r1, r2\nhalt\n", "expected");
}

TEST(AssemblerErrors, UndefinedLabel) {
  expect_asm_error("beq r1, r2, nowhere\nhalt\n", "undefined label");
}

TEST(AssemblerErrors, OutOfRangeImmediate) {
  // imm15 is [-16384, 16383]; one past either end must be rejected.
  expect_asm_error("addi r1, r0, 16384\nhalt\n", "imm");
  expect_asm_error("addi r1, r0, -16385\nhalt\n", "imm");
}

TEST(AssemblerErrors, LpSetupBadLoopId) {
  expect_asm_error("lp.setup 2, r1, end\nend:\nhalt\n", "0 or 1");
}

TEST(AssemblerErrors, LpSetupEndBeforeBody) {
  expect_asm_error("end:\nlp.setup 0, r1, end\nhalt\n", "before body");
}

TEST(AssemblerBoundaries, ExtremeInRangeImmediatesAssemble) {
  const isa::Program p = assemble(
      "addi r1, r0, 16383\n"
      "addi r2, r0, -16384\n"
      "lui  r3, 0xfffff\n"
      "halt\n");
  EXPECT_EQ(p.code[0].imm, 16383);
  EXPECT_EQ(p.code[1].imm, -16384);
  EXPECT_EQ(p.code[2].imm, 0xfffff);
}

TEST(BuilderErrors, PatchImmValidatesRangeAndIndex) {
  Builder b(core::or10n_config().features);
  const u32 i = b.emit(Opcode::kAddi, 1, 0, 0, 5);
  EXPECT_THROW(b.patch_imm(i, 16384), SimError);
  EXPECT_THROW(b.patch_imm(i + 1, 0), SimError);
  b.patch_imm(i, -16384);  // extreme but legal
  EXPECT_EQ(b.instr_at(i).imm, -16384);
}

TEST(BuilderErrors, InstrAtOutOfRange) {
  Builder b(core::or10n_config().features);
  EXPECT_THROW((void)b.instr_at(0), SimError);
}

TEST(BuilderErrors, BranchRequiresBranchOpcode) {
  Builder b(core::or10n_config().features);
  const Builder::Label l = b.make_label();
  EXPECT_THROW(b.branch(Opcode::kAdd, 1, 2, l), SimError);
}

TEST(BuilderErrors, FinalizeRejectsUnboundLabel) {
  Builder b(core::or10n_config().features);
  const Builder::Label l = b.make_label();
  b.branch(Opcode::kBeq, 0, 0, l);
  b.emit(Opcode::kHalt);
  EXPECT_THROW((void)std::move(b).finalize(), SimError);
}

TEST(BuilderErrors, LabelBoundTwice) {
  Builder b(core::or10n_config().features);
  const Builder::Label l = b.make_label();
  b.bind(l);
  EXPECT_THROW(b.bind(l), SimError);
}

TEST(BuilderErrors, EmptyHardwareLoopBody) {
  Builder b(core::or10n_config().features);
  b.li(1, 4);
  EXPECT_THROW(b.loop(1, 2, [] {}), SimError);
}

// One instruction of every opcode, with operands that exercise the full
// field widths, must survive disassemble -> assemble unchanged. This is
// the contract the .repro format (and its committed corpus) relies on.
TEST(DisasmRoundTrip, EveryOpcodeSurvives) {
  std::vector<isa::Instr> all;
  for (size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    isa::Instr in;
    in.op = op;
    switch (isa::op_info(op).fmt) {
      case isa::Fmt::kR:
        in.rd = 1;
        in.ra = 2;
        in.rb = 31;
        break;
      case isa::Fmt::kI:
        in.rd = 3;
        in.ra = 4;
        in.imm = -16384;
        break;
      case isa::Fmt::kLui:
        in.rd = 5;
        in.imm = 0xABCDE;
        break;
      case isa::Fmt::kMem:
        in.rd = 6;
        in.ra = 7;
        in.imm = 16383;
        break;
      case isa::Fmt::kB:
        in.ra = 8;
        in.rb = 9;
        in.imm = 2;  // forward target inside the listing
        break;
      case isa::Fmt::kJ:
        in.rd = 10;
        in.imm = 2;
        break;
      case isa::Fmt::kLp:
        in.rd = 1;  // loop id
        in.ra = 11;
        in.imm = 1;
        break;
      case isa::Fmt::kSys:
        if (op == Opcode::kCsrr) {
          in.rd = 12;
          in.imm = 1;
        } else if (op == Opcode::kSev || op == Opcode::kEoc) {
          in.imm = 3;
        }
        break;
    }
    all.push_back(in);
    all.push_back({});  // nop spacer so branch/jal/lp targets stay valid
  }
  all.push_back({Opcode::kHalt});

  std::ostringstream listing;
  for (const isa::Instr& in : all) {
    listing << "    " << isa::disassemble(in) << "\n";
  }
  const isa::Program back = assemble(listing.str());
  ASSERT_EQ(back.code.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(back.code[i], all[i])
        << "instr " << i << ": " << isa::disassemble(all[i]) << " vs "
        << isa::disassemble(back.code[i]);
  }
}

}  // namespace
}  // namespace ulp::codegen
