#include "codegen/builder.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using codegen::Builder;
using isa::Opcode;
using test::SingleCoreRun;

std::vector<core::CoreConfig> all_configs() {
  return {core::baseline_config(), core::or10n_config(),
          core::cortex_m4_config(), core::cortex_m3_config()};
}

TEST(Builder, LiHandlesFullRange) {
  for (u32 v : {0u, 1u, 42u, 0xFFFu, 0x1000u, 0x12345678u, 0xFFFFFFFFu,
                static_cast<u32>(-12345), 0x7FFFFFFFu, 0x80000000u}) {
    Builder bld(core::or10n_config().features);
    bld.li(1, v);
    bld.halt();
    SingleCoreRun run;
    run.run(bld.finalize());
    EXPECT_EQ(run.core.reg(1), v) << "v=" << v;
  }
}

TEST(Builder, MacSelectsByFeature) {
  for (const auto& cfg : all_configs()) {
    Builder bld(cfg.features);
    bld.mac(3, 1, 2, /*scratch=*/10);
    bld.halt();
    SingleCoreRun run(cfg);
    run.run(bld.finalize(), {{1, 6}, {2, 7}, {3, 100}});
    EXPECT_EQ(run.core.reg(3), 142u) << cfg.name;
  }
}

TEST(Builder, MacInstructionCountDiffers) {
  Builder with(core::or10n_config().features);
  with.mac(3, 1, 2, 10);
  Builder without(core::baseline_config().features);
  without.mac(3, 1, 2, 10);
  EXPECT_EQ(with.here(), 1u);
  EXPECT_EQ(without.here(), 2u);
}

TEST(Builder, PostIncrementLoweringEquivalence) {
  for (const auto& cfg : all_configs()) {
    Builder bld(cfg.features);
    bld.li(1, 0x100);
    bld.li(2, 0xAABBCCDD);
    bld.sw_pi(2, 1, 4);
    bld.sh_pi(2, 1, 2);
    bld.sb_pi(2, 1, 1);
    bld.li(3, 0x100);
    bld.lw_pi(4, 3, 4);
    bld.lhu_pi(5, 3, 2);
    bld.lbu_pi(6, 3, 1);
    bld.halt();
    SingleCoreRun run(cfg);
    run.run(bld.finalize());
    EXPECT_EQ(run.core.reg(1), 0x107u) << cfg.name;
    EXPECT_EQ(run.core.reg(3), 0x107u) << cfg.name;
    EXPECT_EQ(run.core.reg(4), 0xAABBCCDDu) << cfg.name;
    EXPECT_EQ(run.core.reg(5), 0xCCDDu) << cfg.name;
    EXPECT_EQ(run.core.reg(6), 0xDDu) << cfg.name;
  }
}

TEST(Builder, MulhSignedMatchesReferenceAllConfigs) {
  Rng rng(0xFEED);
  for (const auto& cfg : all_configs()) {
    for (int trial = 0; trial < 200; ++trial) {
      const u32 a = rng.next_u32();
      const u32 b = rng.next_u32();
      Builder bld(cfg.features);
      bld.mulh_signed(3, 1, 2, 10, 11, 12, 13);
      bld.halt();
      SingleCoreRun run(cfg);
      run.run(bld.finalize(), {{1, a}, {2, b}});
      const i64 full = static_cast<i64>(static_cast<i32>(a)) *
                       static_cast<i64>(static_cast<i32>(b));
      EXPECT_EQ(run.core.reg(3), static_cast<u32>(full >> 32))
          << cfg.name << " a=" << a << " b=" << b;
    }
  }
}

TEST(Builder, Q32MulMatchesReferenceAllConfigs) {
  Rng rng(0xABCD);
  for (const auto& cfg : all_configs()) {
    for (int trial = 0; trial < 200; ++trial) {
      // q32 operands stay within a plausible kernel range (|x| < 2^30).
      const u32 a = static_cast<u32>(rng.uniform(-(1 << 30), (1 << 30)));
      const u32 b = static_cast<u32>(rng.uniform(-(1 << 30), (1 << 30)));
      Builder bld(cfg.features);
      bld.q32_mul(3, 1, 2, 10, 11, 12, 13);
      bld.halt();
      SingleCoreRun run(cfg);
      run.run(bld.finalize(), {{1, a}, {2, b}});
      const i64 full = static_cast<i64>(static_cast<i32>(a)) *
                       static_cast<i64>(static_cast<i32>(b));
      EXPECT_EQ(run.core.reg(3), static_cast<u32>(full >> 16))
          << cfg.name << " a=" << static_cast<i32>(a)
          << " b=" << static_cast<i32>(b);
    }
  }
}

TEST(Builder, Q32MulCostsMoreWithoutMul64) {
  // The hog slowdown in one assertion: the software path is much longer.
  Builder hw(core::cortex_m4_config().features);
  hw.q32_mul(3, 1, 2, 10, 11, 12, 13);
  Builder sw(core::or10n_config().features);
  sw.q32_mul(3, 1, 2, 10, 11, 12, 13);
  EXPECT_GE(sw.here(), hw.here() + 8);
}

TEST(Builder, Add64CarryChain) {
  Rng rng(0x64);
  for (int trial = 0; trial < 300; ++trial) {
    const u64 x = rng.next_u64();
    const u64 y = rng.next_u64();
    Builder bld(core::or10n_config().features);
    bld.add64(1, 2, 3, 4, /*scratch=*/10);
    bld.halt();
    SingleCoreRun run;
    run.run(bld.finalize(), {{1, static_cast<u32>(x)},
                             {2, static_cast<u32>(x >> 32)},
                             {3, static_cast<u32>(y)},
                             {4, static_cast<u32>(y >> 32)}});
    const u64 sum = x + y;
    EXPECT_EQ(run.core.reg(1), static_cast<u32>(sum));
    EXPECT_EQ(run.core.reg(2), static_cast<u32>(sum >> 32));
  }
}

TEST(Builder, LoopCountsMatchAcrossConfigs) {
  for (const auto& cfg : all_configs()) {
    Builder bld(cfg.features);
    bld.li(1, 13);
    bld.loop(1, 10, [&] { bld.emit(Opcode::kAddi, 3, 3, 0, 1); });
    bld.halt();
    SingleCoreRun run(cfg);
    run.run(bld.finalize());
    EXPECT_EQ(run.core.reg(3), 13u) << cfg.name;
  }
}

TEST(Builder, UnboundLabelIsCaught) {
  Builder bld(core::or10n_config().features);
  const auto label = bld.make_label();
  bld.branch(Opcode::kBeq, 0, 0, label);
  bld.halt();
  EXPECT_THROW((void)bld.finalize(), SimError);
}

TEST(Builder, DoubleBindIsCaught) {
  Builder bld(core::or10n_config().features);
  const auto label = bld.make_label();
  bld.bind(label);
  EXPECT_THROW(bld.bind(label), SimError);
}

}  // namespace
}  // namespace ulp
