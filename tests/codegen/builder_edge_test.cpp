// Builder edge cases: misuse detection and exact lowering contracts.
#include "codegen/builder.hpp"

#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "testutil.hpp"

namespace ulp::codegen {
namespace {

using isa::Opcode;
using test::SingleCoreRun;

TEST(BuilderEdge, LoopHotRejectsIndivisibleTripCount) {
  Builder bld(core::cortex_m4_config().features);  // unrolls 4x
  EXPECT_THROW(bld.loop_hot(10, 20, [&] { bld.nop(); }), SimError);
}

TEST(BuilderEdge, LoopHotOnHwTargetAcceptsAnyCount) {
  Builder bld(core::or10n_config().features);
  bld.loop_hot(10, 20, [&] { bld.emit(Opcode::kAddi, 3, 3, 0, 1); });
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(3), 10u);
}

TEST(BuilderEdge, LoopHotBaselineDoesNotUnroll) {
  Builder base(core::baseline_config().features);
  base.loop_hot(16, 20, [&] { base.nop(); });
  Builder m4(core::cortex_m4_config().features);
  m4.loop_hot(16, 20, [&] { m4.nop(); });
  // Baseline: 1 body emission; M4: 4 (plus identical loop scaffolding).
  EXPECT_EQ(m4.here(), base.here() + 3);
}

TEST(BuilderEdge, LoopHotZeroTripIsRejected) {
  Builder bld(core::or10n_config().features);
  EXPECT_THROW(bld.loop_hot(0, 20, [&] { bld.nop(); }), SimError);
}

TEST(BuilderEdge, LiExtremes) {
  for (const u32 v : {0x80000000u, 0x7FFFFFFFu, 0x00001000u, 0x00000FFFu,
                      0xFFFFF000u, 0xFFFFFFFFu}) {
    Builder bld(core::or10n_config().features);
    bld.li(1, v);
    bld.halt();
    SingleCoreRun run;
    run.run(bld.finalize());
    EXPECT_EQ(run.core.reg(1), v) << std::hex << v;
  }
}

TEST(BuilderEdge, EmptyHwLoopBodyIsRejected) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 4);
  EXPECT_THROW(bld.loop(1, 20, [] {}), SimError);
}

TEST(BuilderEdge, DmaHelpersEmitValidPrograms) {
  // The DMA start/wait sequences must encode (all immediates in range).
  Builder bld(core::or10n_config().features);
  bld.li(20, 0x1C000000);
  bld.li(21, 0x10000000);
  bld.li(22, 4096);
  bld.dma_start(25, 20, 21, 22);
  bld.dma_wait(25, 26);
  bld.halt();
  const isa::Program p = bld.finalize();
  EXPECT_NO_THROW((void)isa::encode_all(p.code));
}

TEST(BuilderEdge, FinalizeValidatesEntry) {
  Builder bld(core::or10n_config().features);
  bld.halt();
  EXPECT_THROW((void)bld.finalize(/*entry=*/5), SimError);
}

TEST(BuilderEdge, MacScratchUnusedWhenHardwareMacExists) {
  Builder bld(core::or10n_config().features);
  bld.mac(3, 1, 2, /*scratch=*/10);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize(), {{1, 5}, {2, 6}, {10, 777}});
  EXPECT_EQ(run.core.reg(10), 777u);  // untouched
  EXPECT_EQ(run.core.reg(3), 30u);
}

TEST(BuilderEdge, PostincFallbackPreservesOrderWithAliasedData) {
  // sw! rd, imm(ra) with rd==ra on a non-postinc target lowers to
  // sw + addi; the stored value must be the pre-increment one.
  Builder bld(core::baseline_config().features);
  bld.li(1, 0x100);
  bld.sw_pi(1, 1, 4);  // stores r1 (0x100) at 0x100, then r1 += 4
  bld.halt();
  SingleCoreRun run(core::baseline_config());
  run.run(bld.finalize());
  EXPECT_EQ(run.bus.debug_load(0x100, 4, false), 0x100u);
  EXPECT_EQ(run.core.reg(1), 0x104u);
}

}  // namespace
}  // namespace ulp::codegen
