// Assembler <-> disassembler round-trip fuzzing over the whole ISA: any
// instruction the disassembler prints must re-assemble to itself.
#include <gtest/gtest.h>

#include "codegen/assembler.hpp"
#include "common/rng.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace ulp::codegen {
namespace {

using isa::Fmt;
using isa::Instr;
using isa::Opcode;

Instr random_instr(Rng& rng, Opcode op) {
  Instr in;
  in.op = op;
  const Fmt fmt = isa::op_info(op).fmt;
  auto reg = [&] { return static_cast<u8>(rng.uniform(0, 31)); };
  switch (fmt) {
    case Fmt::kR:
      in.rd = reg();
      in.ra = reg();
      in.rb = reg();
      break;
    case Fmt::kI:
    case Fmt::kMem:
      in.rd = reg();
      in.ra = reg();
      in.imm = rng.uniform(-(1 << 14), (1 << 14) - 1);
      break;
    case Fmt::kB:
      in.ra = reg();
      in.rb = reg();
      in.imm = rng.uniform(-(1 << 14), (1 << 14) - 1);
      break;
    case Fmt::kLui:
      in.rd = reg();
      in.imm = rng.uniform(0, (1 << 20) - 1);
      break;
    case Fmt::kJ:
      in.rd = reg();
      in.imm = rng.uniform(-(1 << 19), (1 << 19) - 1);
      break;
    case Fmt::kLp:
      in.rd = static_cast<u8>(rng.uniform(0, 1));
      in.ra = reg();
      in.imm = rng.uniform(1, (1 << 14) - 1);
      break;
    case Fmt::kSys:
      if (op == Opcode::kCsrr) {
        in.rd = reg();
        in.imm = rng.uniform(0, 2);
      } else if (op == Opcode::kSev || op == Opcode::kEoc) {
        in.imm = rng.uniform(0, 100);
      }
      break;
  }
  return in;
}

TEST(AssemblerFuzz, DisassemblyReassemblesExactly) {
  Rng rng(0xA55E);
  for (size_t opi = 0; opi < isa::kNumOpcodes; ++opi) {
    const auto op = static_cast<Opcode>(opi);
    for (int t = 0; t < 50; ++t) {
      const Instr in = random_instr(rng, op);
      const std::string text = isa::disassemble(in);
      const isa::Program p = assemble(text);
      ASSERT_EQ(p.code.size(), 1u) << text;
      EXPECT_EQ(p.code[0], in) << text;
    }
  }
}

TEST(AssemblerFuzz, WholeProgramsRoundTrip) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Instr> code;
    std::string listing;
    for (int k = 0; k < 50; ++k) {
      const auto op =
          static_cast<Opcode>(rng.uniform(0, isa::kNumOpcodes - 1));
      const Instr in = random_instr(rng, op);
      code.push_back(in);
      listing += isa::disassemble(in) + "\n";
    }
    const isa::Program p = assemble(listing);
    ASSERT_EQ(p.code.size(), code.size());
    for (size_t i = 0; i < code.size(); ++i) {
      EXPECT_EQ(p.code[i], code[i]) << "line " << i;
    }
  }
}

TEST(AssemblerFuzz, EncodedWordsSurviveTheFullChain) {
  // instr -> encode -> decode -> disassemble -> assemble -> encode: the two
  // binary words must match.
  Rng rng(0xC0DE);
  for (int t = 0; t < 500; ++t) {
    const auto op =
        static_cast<Opcode>(rng.uniform(0, isa::kNumOpcodes - 1));
    const Instr in = random_instr(rng, op);
    const u32 w1 = isa::encode(in);
    const Instr back = isa::decode(w1);
    const isa::Program p = assemble(isa::disassemble(back));
    const u32 w2 = isa::encode(p.code.at(0));
    EXPECT_EQ(w1, w2) << isa::disassemble(in);
  }
}

}  // namespace
}  // namespace ulp::codegen
