#include "codegen/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using codegen::assemble;
using isa::Opcode;
using test::SingleCoreRun;

TEST(Assembler, ParsesBasicFormats) {
  const auto p = assemble(R"(
      addi r1, r0, 64
      add  r2, r1, r1
      lw   r3, 8(r4)
      sw!  r3, 4(r4)
      beq  r1, r2, -2
      lui  r5, 0x12345
      jal  r6, 2
      csrr r7, 1
      barrier
      halt
  )");
  ASSERT_EQ(p.code.size(), 10u);
  EXPECT_EQ(p.code[0], (isa::Instr{Opcode::kAddi, 1, 0, 0, 64}));
  EXPECT_EQ(p.code[1], (isa::Instr{Opcode::kAdd, 2, 1, 1, 0}));
  EXPECT_EQ(p.code[2], (isa::Instr{Opcode::kLw, 3, 4, 0, 8}));
  EXPECT_EQ(p.code[3], (isa::Instr{Opcode::kSwpi, 3, 4, 0, 4}));
  EXPECT_EQ(p.code[4], (isa::Instr{Opcode::kBeq, 0, 1, 2, -2}));
  EXPECT_EQ(p.code[5], (isa::Instr{Opcode::kLui, 5, 0, 0, 0x12345}));
  EXPECT_EQ(p.code[6], (isa::Instr{Opcode::kJal, 6, 0, 0, 2}));
  EXPECT_EQ(p.code[7], (isa::Instr{Opcode::kCsrr, 7, 0, 0, 1}));
  EXPECT_EQ(p.code[8].op, Opcode::kBarrier);
  EXPECT_EQ(p.code[9].op, Opcode::kHalt);
}

TEST(Assembler, ResolvesLabels) {
  const auto p = assemble(R"(
      addi r1, r0, 5
    top:
      addi r1, r1, -1
      bne  r1, r0, top
      halt
  )");
  SingleCoreRun run;
  run.run(p);
  EXPECT_EQ(run.core.reg(1), 0u);
}

TEST(Assembler, LpSetupWithEndLabel) {
  const auto p = assemble(R"(
      addi r1, r0, 7
      lp.setup 0, r1, body_end
      addi r2, r2, 3
    body_end:
      halt
  )");
  SingleCoreRun run;
  run.run(p);
  EXPECT_EQ(run.core.reg(2), 21u);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto p = assemble(R"(
      ; full-line comment
      addi r1, r0, 1   # trailing comment

      # another
      halt
  )");
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, RoundTripsDisassembly) {
  // Disassembler output must re-assemble to the identical instruction.
  const std::vector<isa::Instr> cases = {
      {Opcode::kMac, 3, 4, 5, 0},      {Opcode::kLw, 1, 2, 0, -8},
      {Opcode::kSbpi, 7, 8, 0, 1},     {Opcode::kBgeu, 0, 1, 2, 5},
      {Opcode::kLui, 9, 0, 0, 0xFF},   {Opcode::kDotp4b, 1, 2, 3, 0},
      {Opcode::kCsrr, 4, 0, 0, 2},     {Opcode::kEoc, 0, 0, 0, 1},
  };
  for (const auto& in : cases) {
    const auto p = assemble(isa::disassemble(in));
    ASSERT_EQ(p.code.size(), 1u) << isa::disassemble(in);
    EXPECT_EQ(p.code[0], in) << isa::disassemble(in);
  }
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble("addi r1, r0, 1\nbogus r1, r2\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, RejectsUndefinedLabel) {
  EXPECT_THROW((void)assemble("beq r0, r0, nowhere\n"), SimError);
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_THROW((void)assemble("a:\nnop\na:\nnop\n"), SimError);
}

TEST(Assembler, RejectsBadRegister) {
  EXPECT_THROW((void)assemble("addi r32, r0, 1\n"), SimError);
  EXPECT_THROW((void)assemble("addi rx, r0, 1\n"), SimError);
}

TEST(Assembler, RejectsWrongOperandCount) {
  EXPECT_THROW((void)assemble("add r1, r2\n"), SimError);
  EXPECT_THROW((void)assemble("halt r1\n"), SimError);
}

}  // namespace
}  // namespace ulp
