// Differential fuzzing of the ISS ALU against an independent oracle.
//
// Random straight-line programs over the register-register and
// register-immediate ALU subset are executed both by the cycle-stepped core
// and by a deliberately separate (switch-based, non-shared) interpreter;
// the full 32-register architectural state must agree after every program.
// This catches semantics bugs (sign extension, shift masking, lane packing,
// wrap-around) that example-based tests miss.
#include <array>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using isa::Instr;
using isa::Opcode;

// Opcodes covered by the fuzz (pure register computations; memory and
// control flow have their own targeted tests).
constexpr Opcode kRrOps[] = {
    Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOr, Opcode::kXor,
    Opcode::kSll, Opcode::kSrl, Opcode::kSra, Opcode::kSlt, Opcode::kSltu,
    Opcode::kMul, Opcode::kDiv, Opcode::kDivu, Opcode::kRem, Opcode::kRemu,
    Opcode::kMac, Opcode::kDotp2h, Opcode::kDotp4b, Opcode::kAdd2h,
    Opcode::kSub2h, Opcode::kAdd4b, Opcode::kSub4b, Opcode::kMulhs,
    Opcode::kMulhu,
};
constexpr Opcode kRiOps[] = {
    Opcode::kAddi, Opcode::kAndi, Opcode::kOri, Opcode::kXori, Opcode::kSlli,
    Opcode::kSrli, Opcode::kSrai, Opcode::kSlti, Opcode::kSltiu, Opcode::kLui,
};

/// The oracle: an independent definition of the ALU semantics.
class Oracle {
 public:
  std::array<u32, 32> regs{};

  void exec(const Instr& in) {
    const u32 a = regs[in.ra];
    const u32 b = regs[in.rb];
    const u32 d = regs[in.rd];
    const auto sa = static_cast<i32>(a);
    const auto sb = static_cast<i32>(b);
    u32 r = 0;
    switch (in.op) {
      case Opcode::kAdd: r = a + b; break;
      case Opcode::kSub: r = a - b; break;
      case Opcode::kAnd: r = a & b; break;
      case Opcode::kOr: r = a | b; break;
      case Opcode::kXor: r = a ^ b; break;
      case Opcode::kSll: r = a << (b % 32); break;
      case Opcode::kSrl: r = a >> (b % 32); break;
      case Opcode::kSra:
        r = static_cast<u32>(static_cast<i64>(sa) >> (b % 32));
        break;
      case Opcode::kSlt: r = sa < sb ? 1 : 0; break;
      case Opcode::kSltu: r = a < b ? 1 : 0; break;
      case Opcode::kMul:
        r = static_cast<u32>(static_cast<u64>(a) * b);
        break;
      case Opcode::kMulhs:
        r = static_cast<u32>(
            static_cast<u64>(static_cast<i64>(sa) * sb) >> 32);
        break;
      case Opcode::kMulhu:
        r = static_cast<u32>((static_cast<u64>(a) * b) >> 32);
        break;
      case Opcode::kDiv:
        if (b == 0) {
          r = 0xFFFFFFFF;
        } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
          r = 0x80000000u;  // INT_MIN / -1 overflow convention
        } else {
          r = static_cast<u32>(sa / sb);
        }
        break;
      case Opcode::kDivu: r = b == 0 ? 0xFFFFFFFF : a / b; break;
      case Opcode::kRem:
        if (b == 0) {
          r = a;
        } else if (a == 0x80000000u && b == 0xFFFFFFFFu) {
          r = 0;
        } else {
          r = static_cast<u32>(sa % sb);
        }
        break;
      case Opcode::kRemu: r = b == 0 ? a : a % b; break;
      case Opcode::kMac:
        r = d + static_cast<u32>(static_cast<u64>(a) * b);
        break;
      case Opcode::kDotp2h: {
        i64 acc = 0;
        for (int l = 0; l < 2; ++l) {
          acc += static_cast<i64>(static_cast<i16>(a >> (16 * l))) *
                 static_cast<i16>(b >> (16 * l));
        }
        r = d + static_cast<u32>(acc);
        break;
      }
      case Opcode::kDotp4b: {
        i64 acc = 0;
        for (int l = 0; l < 4; ++l) {
          acc += static_cast<i64>(static_cast<i8>(a >> (8 * l))) *
                 static_cast<i8>(b >> (8 * l));
        }
        r = d + static_cast<u32>(acc);
        break;
      }
      case Opcode::kAdd2h:
      case Opcode::kSub2h: {
        for (int l = 0; l < 2; ++l) {
          const u32 la = (a >> (16 * l)) & 0xFFFF;
          const u32 lb = (b >> (16 * l)) & 0xFFFF;
          const u32 lr =
              (in.op == Opcode::kAdd2h ? la + lb : la - lb) & 0xFFFF;
          r |= lr << (16 * l);
        }
        break;
      }
      case Opcode::kAdd4b:
      case Opcode::kSub4b: {
        for (int l = 0; l < 4; ++l) {
          const u32 la = (a >> (8 * l)) & 0xFF;
          const u32 lb = (b >> (8 * l)) & 0xFF;
          const u32 lr = (in.op == Opcode::kAdd4b ? la + lb : la - lb) & 0xFF;
          r |= lr << (8 * l);
        }
        break;
      }
      case Opcode::kAddi: r = a + static_cast<u32>(in.imm); break;
      case Opcode::kAndi: r = a & static_cast<u32>(in.imm); break;
      case Opcode::kOri: r = a | static_cast<u32>(in.imm); break;
      case Opcode::kXori: r = a ^ static_cast<u32>(in.imm); break;
      case Opcode::kSlli: r = a << (in.imm % 32); break;
      case Opcode::kSrli: r = a >> (in.imm % 32); break;
      case Opcode::kSrai:
        r = static_cast<u32>(static_cast<i64>(sa) >> (in.imm % 32));
        break;
      case Opcode::kSlti: r = sa < in.imm ? 1 : 0; break;
      case Opcode::kSltiu: r = a < static_cast<u32>(in.imm) ? 1 : 0; break;
      case Opcode::kLui: r = static_cast<u32>(in.imm) << 12; break;
      default:
        FAIL() << "oracle missing opcode";
    }
    if (in.rd != 0) regs[in.rd] = r;
  }
};

TEST(CoreFuzz, AluAgreesWithOracle) {
  Rng rng(0x5EED);
  const core::CoreConfig cfg = core::cortex_m4_config();  // has mul64
  for (int trial = 0; trial < 300; ++trial) {
    // Random initial register file.
    std::array<u32, 32> init{};
    for (u32 i = 1; i < 32; ++i) {
      // Mix of full-range and "interesting" values.
      switch (rng.uniform(0, 3)) {
        case 0: init[i] = rng.next_u32(); break;
        case 1: init[i] = static_cast<u32>(rng.uniform(-4, 4)); break;
        case 2: init[i] = 0x80000000u; break;
        default: init[i] = 0xFFFFFFFFu; break;
      }
    }
    // Random straight-line program.
    isa::Program prog;
    Oracle oracle;
    oracle.regs = init;
    const int len = rng.uniform(1, 40);
    for (int k = 0; k < len; ++k) {
      Instr in;
      if (rng.uniform(0, 1) == 0) {
        in.op = kRrOps[static_cast<size_t>(
            rng.uniform(0, std::size(kRrOps) - 1))];
        in.rd = static_cast<u8>(rng.uniform(0, 31));
        in.ra = static_cast<u8>(rng.uniform(0, 31));
        in.rb = static_cast<u8>(rng.uniform(0, 31));
      } else {
        in.op = kRiOps[static_cast<size_t>(
            rng.uniform(0, std::size(kRiOps) - 1))];
        in.rd = static_cast<u8>(rng.uniform(0, 31));
        in.ra = static_cast<u8>(rng.uniform(0, 31));
        in.imm = in.op == Opcode::kLui ? rng.uniform(0, (1 << 20) - 1)
                                       : rng.uniform(-(1 << 14), (1 << 14) - 1);
      }
      // The M4 config lacks SIMD: skip (they get their own or10n trial).
      if (isa::is_simd(in.op)) continue;
      prog.code.push_back(in);
      oracle.exec(in);
    }
    prog.code.push_back({Opcode::kHalt, 0, 0, 0, 0});

    test::SingleCoreRun run(cfg);
    std::map<u32, u32> regs;
    for (u32 i = 1; i < 32; ++i) regs[i] = init[i];
    run.run(prog, regs);
    for (u32 i = 0; i < 32; ++i) {
      ASSERT_EQ(run.core.reg(i), oracle.regs[i])
          << "trial " << trial << " reg r" << i;
    }
  }
}

TEST(CoreFuzz, SimdAgreesWithOracleOnOr10n) {
  Rng rng(0xF00D);
  const core::CoreConfig cfg = core::or10n_config();
  constexpr Opcode kSimdOps[] = {Opcode::kDotp2h, Opcode::kDotp4b,
                                 Opcode::kAdd2h, Opcode::kSub2h,
                                 Opcode::kAdd4b, Opcode::kSub4b,
                                 Opcode::kMac};
  for (int trial = 0; trial < 300; ++trial) {
    std::array<u32, 32> init{};
    for (u32 i = 1; i < 32; ++i) init[i] = rng.next_u32();
    isa::Program prog;
    Oracle oracle;
    oracle.regs = init;
    for (int k = 0; k < 24; ++k) {
      Instr in;
      in.op = kSimdOps[static_cast<size_t>(
          rng.uniform(0, std::size(kSimdOps) - 1))];
      in.rd = static_cast<u8>(rng.uniform(0, 31));
      in.ra = static_cast<u8>(rng.uniform(0, 31));
      in.rb = static_cast<u8>(rng.uniform(0, 31));
      prog.code.push_back(in);
      oracle.exec(in);
    }
    prog.code.push_back({Opcode::kHalt, 0, 0, 0, 0});
    test::SingleCoreRun run(cfg);
    std::map<u32, u32> regs;
    for (u32 i = 1; i < 32; ++i) regs[i] = init[i];
    run.run(prog, regs);
    for (u32 i = 0; i < 32; ++i) {
      ASSERT_EQ(run.core.reg(i), oracle.regs[i])
          << "trial " << trial << " reg r" << i;
    }
  }
}

}  // namespace
}  // namespace ulp
