// Differential fuzzing of the load/store path against a byte-array oracle:
// random sequences of aligned and unaligned accesses of every width, with
// and without post-increment, must leave memory and registers identical to
// the reference model.
#include <array>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using isa::Instr;
using isa::Opcode;

constexpr u32 kMemBase = 0x1000;
constexpr u32 kMemSpan = 0x800;

struct MemOracle {
  std::array<u32, 32> regs{};
  std::vector<u8> mem = std::vector<u8>(kMemSpan, 0);

  void exec(const Instr& in) {
    const bool store = isa::is_store(in.op);
    const int size = isa::access_size(in.op);
    const bool postinc = isa::is_postinc(in.op);
    const Addr addr = postinc ? regs[in.ra]
                              : regs[in.ra] + static_cast<u32>(in.imm);
    const size_t off = addr - kMemBase;
    if (store) {
      for (int i = 0; i < size; ++i) {
        mem[off + static_cast<size_t>(i)] =
            static_cast<u8>(regs[in.rd] >> (8 * i));
      }
    } else {
      u32 v = 0;
      for (int i = size - 1; i >= 0; --i) {
        v = (v << 8) | mem[off + static_cast<size_t>(i)];
      }
      const bool sign = in.op == Opcode::kLh || in.op == Opcode::kLhpi ||
                        in.op == Opcode::kLb || in.op == Opcode::kLbpi;
      if (sign && size < 4) {
        const u32 sbit = 1u << (size * 8 - 1);
        if (v & sbit) v |= ~((sbit << 1) - 1);
      }
      if (in.rd != 0) regs[in.rd] = v;
    }
    if (postinc && in.ra != 0) {
      regs[in.ra] += static_cast<u32>(in.imm);
    }
  }
};

TEST(CoreMemFuzz, AgreesWithOracle) {
  Rng rng(0xACCE55);
  constexpr Opcode kOps[] = {
      Opcode::kLw, Opcode::kLh, Opcode::kLhu, Opcode::kLb, Opcode::kLbu,
      Opcode::kSw, Opcode::kSh, Opcode::kSb, Opcode::kLwpi, Opcode::kLhpi,
      Opcode::kLhupi, Opcode::kLbpi, Opcode::kLbupi, Opcode::kSwpi,
      Opcode::kShpi, Opcode::kSbpi,
  };
  for (int trial = 0; trial < 120; ++trial) {
    MemOracle oracle;
    // Registers r1..r8 are pointers inside the window; r9..r15 data.
    std::map<u32, u32> init;
    for (u32 r = 1; r <= 8; ++r) {
      init[r] = kMemBase + static_cast<u32>(rng.uniform(64, kMemSpan - 64));
    }
    for (u32 r = 9; r <= 15; ++r) init[r] = rng.next_u32();
    for (const auto& [r, v] : init) oracle.regs[r] = v;

    isa::Program prog;
    for (int k = 0; k < 60; ++k) {
      Instr in;
      in.op = kOps[static_cast<size_t>(
          rng.uniform(0, static_cast<i32>(std::size(kOps)) - 1))];
      const bool postinc = isa::is_postinc(in.op);
      in.rd = static_cast<u8>(rng.uniform(9, 15));
      in.ra = static_cast<u8>(rng.uniform(1, 8));
      const int size = isa::access_size(in.op);
      if (postinc) {
        // Keep pointers inside the window: small bidirectional steps,
        // aligned to the access size so the pointer stays aligned... or
        // deliberately unaligned half the time (OR10N supports it).
        in.imm = rng.uniform(-8, 8);
      } else {
        in.imm = rng.uniform(-32, 32);
      }
      // Compute the effective address the oracle would use; skip ops that
      // would leave the window or misalign beyond what we want to test.
      const Addr addr = postinc
                            ? oracle.regs[in.ra]
                            : oracle.regs[in.ra] + static_cast<u32>(in.imm);
      if (addr < kMemBase + 8 || addr + 8 >= kMemBase + kMemSpan) continue;
      (void)size;
      prog.code.push_back(in);
      oracle.exec(in);
    }
    prog.code.push_back({Opcode::kHalt, 0, 0, 0, 0});

    test::SingleCoreRun run(core::or10n_config(), 0, kMemBase + kMemSpan);
    run.run(prog, init);
    for (u32 r = 0; r < 32; ++r) {
      ASSERT_EQ(run.core.reg(r), oracle.regs[r])
          << "trial " << trial << " reg r" << r;
    }
    for (u32 i = 0; i < kMemSpan; ++i) {
      ASSERT_EQ(run.bus.debug_load(kMemBase + i, 1, false), oracle.mem[i])
          << "trial " << trial << " byte " << i;
    }
  }
}

}  // namespace
}  // namespace ulp
