#include <gtest/gtest.h>

#include "codegen/builder.hpp"
#include "common/rng.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using codegen::Builder;
using isa::Opcode;
using test::SingleCoreRun;

// Runs a single R-type instruction with operands in r1, r2 (accumulator
// seed in r3 for MAC-class ops) and returns r3.
u32 run_rrr(Opcode op, u32 a, u32 b, u32 seed = 0,
            core::CoreConfig cfg = core::or10n_config()) {
  Builder bld(cfg.features);
  bld.emit(op, 3, 1, 2);
  bld.halt();
  SingleCoreRun run(std::move(cfg));
  run.run(bld.finalize(), {{1, a}, {2, b}, {3, seed}});
  return run.core.reg(3);
}

TEST(CoreAlu, AddSubWrapAround) {
  EXPECT_EQ(run_rrr(Opcode::kAdd, 0xFFFFFFFF, 1), 0u);
  EXPECT_EQ(run_rrr(Opcode::kSub, 0, 1), 0xFFFFFFFFu);
  EXPECT_EQ(run_rrr(Opcode::kAdd, 100, 23), 123u);
}

TEST(CoreAlu, LogicAndShifts) {
  EXPECT_EQ(run_rrr(Opcode::kAnd, 0xF0F0, 0xFF00), 0xF000u);
  EXPECT_EQ(run_rrr(Opcode::kOr, 0xF0F0, 0x0F0F), 0xFFFFu);
  EXPECT_EQ(run_rrr(Opcode::kXor, 0xFFFF, 0x0F0F), 0xF0F0u);
  EXPECT_EQ(run_rrr(Opcode::kSll, 1, 31), 0x80000000u);
  EXPECT_EQ(run_rrr(Opcode::kSrl, 0x80000000, 31), 1u);
  EXPECT_EQ(run_rrr(Opcode::kSra, 0x80000000, 31), 0xFFFFFFFFu);
  // Shift amounts use only the low 5 bits.
  EXPECT_EQ(run_rrr(Opcode::kSll, 1, 33), 2u);
}

TEST(CoreAlu, SetLessThan) {
  EXPECT_EQ(run_rrr(Opcode::kSlt, static_cast<u32>(-5), 3), 1u);
  EXPECT_EQ(run_rrr(Opcode::kSltu, static_cast<u32>(-5), 3), 0u);
  EXPECT_EQ(run_rrr(Opcode::kSlt, 3, 3), 0u);
}

TEST(CoreAlu, MultiplyAndHighHalves) {
  EXPECT_EQ(run_rrr(Opcode::kMul, 7, 6), 42u);
  EXPECT_EQ(run_rrr(Opcode::kMul, 0x10000, 0x10000), 0u);  // low word only
  // mulhs/mulhu need a core with has_mul64 (Cortex-M class).
  EXPECT_EQ(run_rrr(Opcode::kMulhu, 0x80000000, 2, 0, core::cortex_m4_config()),
            1u);
  EXPECT_EQ(run_rrr(Opcode::kMulhs, static_cast<u32>(-2), 0x40000000, 0,
                    core::cortex_m4_config()),
            0xFFFFFFFFu);
}

TEST(CoreAlu, Mul64GatedByFeature) {
  EXPECT_THROW(run_rrr(Opcode::kMulhu, 1, 1), SimError);  // or10n lacks it
}

TEST(CoreAlu, DivisionSemantics) {
  EXPECT_EQ(run_rrr(Opcode::kDiv, static_cast<u32>(-7), 2), static_cast<u32>(-3));
  EXPECT_EQ(run_rrr(Opcode::kDivu, 7, 2), 3u);
  EXPECT_EQ(run_rrr(Opcode::kRem, static_cast<u32>(-7), 2), static_cast<u32>(-1));
  EXPECT_EQ(run_rrr(Opcode::kRemu, 7, 2), 1u);
  // Division by zero follows the RISC convention: all-ones / unchanged rem.
  EXPECT_EQ(run_rrr(Opcode::kDiv, 5, 0), 0xFFFFFFFFu);
  EXPECT_EQ(run_rrr(Opcode::kRem, 5, 0), 5u);
}

TEST(CoreAlu, MacAccumulates) {
  EXPECT_EQ(run_rrr(Opcode::kMac, 3, 4, 100), 112u);
  EXPECT_EQ(run_rrr(Opcode::kMac, static_cast<u32>(-2), 5, 100), 90u);
}

TEST(CoreAlu, Dotp2hSignedLanes) {
  // a = (1, -2), b = (3, 4) as 16-bit lanes -> 1*3 + (-2)*4 = -5.
  const u32 a = (static_cast<u32>(static_cast<u16>(-2)) << 16) | 1;
  const u32 b = (4u << 16) | 3;
  EXPECT_EQ(run_rrr(Opcode::kDotp2h, a, b, 10), 5u);  // 10 + (-5)
}

TEST(CoreAlu, Dotp4bSignedLanes) {
  // a = (1, -1, 2, -2), b = (10, 10, 10, 10) -> 0.
  const u32 a = (static_cast<u32>(static_cast<u8>(-2)) << 24) | (2u << 16) |
                (static_cast<u32>(static_cast<u8>(-1)) << 8) | 1;
  const u32 b = 0x0A0A0A0A;
  EXPECT_EQ(run_rrr(Opcode::kDotp4b, a, b, 7), 7u);
}

TEST(CoreAlu, SimdVectorAddSub) {
  // Lane-wise 16-bit: (1, 0x7FFF) + (1, 1) -> (2, 0x8000): wraps per lane.
  const u32 a = (0x7FFFu << 16) | 1;
  const u32 b = (1u << 16) | 1;
  EXPECT_EQ(run_rrr(Opcode::kAdd2h, a, b), (0x8000u << 16) | 2);
  EXPECT_EQ(run_rrr(Opcode::kSub4b, 0x05050505, 0x01020304),
            0x04030201u);
}

TEST(CoreAlu, SimdGatedByFeature) {
  EXPECT_THROW(run_rrr(Opcode::kDotp2h, 1, 1, 0, core::cortex_m4_config()),
               SimError);
  EXPECT_THROW(run_rrr(Opcode::kMac, 1, 1, 0, core::baseline_config()),
               SimError);
}

TEST(CoreAlu, R0IsHardwiredZero) {
  Builder bld(core::or10n_config().features);
  bld.emit(Opcode::kAddi, 0, 0, 0, 42);  // write to r0: discarded
  bld.emit(Opcode::kAdd, 1, 0, 0);       // r1 = r0 + r0
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(0), 0u);
  EXPECT_EQ(run.core.reg(1), 0u);
}

TEST(CoreAlu, LuiOriBuildsConstants) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 0xDEADBEEF);
  bld.li(2, 42);
  bld.li(3, static_cast<u32>(-7));
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(1), 0xDEADBEEFu);
  EXPECT_EQ(run.core.reg(2), 42u);
  EXPECT_EQ(run.core.reg(3), static_cast<u32>(-7));
}

TEST(CoreAlu, CsrReads) {
  Builder bld(core::or10n_config().features);
  bld.csr_coreid(1);
  bld.csr_numcores(2);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(1), 0u);
  EXPECT_EQ(run.core.reg(2), 1u);
}

TEST(CoreAlu, MultiCycleOpsChargeCost) {
  // div on or10n costs div_cycles; compare against a single add.
  Builder bdiv(core::or10n_config().features);
  bdiv.emit(Opcode::kDiv, 3, 1, 2);
  bdiv.halt();
  SingleCoreRun rd;
  const u64 div_cycles = rd.run(bdiv.finalize(), {{1, 100}, {2, 3}});

  Builder badd(core::or10n_config().features);
  badd.emit(Opcode::kAdd, 3, 1, 2);
  badd.halt();
  SingleCoreRun ra;
  const u64 add_cycles = ra.run(badd.finalize(), {{1, 100}, {2, 3}});

  EXPECT_EQ(div_cycles - add_cycles,
            core::or10n_config().costs.div_cycles - 1);
}

}  // namespace
}  // namespace ulp
