#include <gtest/gtest.h>

#include "codegen/builder.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using codegen::Builder;
using isa::Opcode;
using test::SingleCoreRun;

// r3 counts body executions of a loop with trip count in r1.
isa::Program counting_loop(const core::CoreFeatures& f) {
  Builder bld(f);
  bld.loop(/*count=*/1, /*scratch=*/10,
           [&] { bld.emit(Opcode::kAddi, 3, 3, 0, 1); });
  bld.halt();
  return bld.finalize();
}

TEST(CoreLoops, HwLoopExecutesExactTripCount) {
  SingleCoreRun run;
  run.run(counting_loop(core::or10n_config().features), {{1, 17}});
  EXPECT_EQ(run.core.reg(3), 17u);
}

TEST(CoreLoops, SwLoopExecutesExactTripCount) {
  SingleCoreRun run(core::cortex_m4_config());
  run.run(counting_loop(core::cortex_m4_config().features), {{1, 17}});
  EXPECT_EQ(run.core.reg(3), 17u);
}

TEST(CoreLoops, ZeroTripCountSkipsBodyBothWays) {
  {
    SingleCoreRun run;
    run.run(counting_loop(core::or10n_config().features), {{1, 0}});
    EXPECT_EQ(run.core.reg(3), 0u);
  }
  {
    SingleCoreRun run(core::cortex_m4_config());
    run.run(counting_loop(core::cortex_m4_config().features), {{1, 0}});
    EXPECT_EQ(run.core.reg(3), 0u);
  }
}

TEST(CoreLoops, HwLoopHasZeroPerIterationOverhead) {
  // Body of one addi, N iterations: with hardware loops total cycles must be
  // setup + N (no branch cost at all).
  auto cycles_for = [](u32 n) {
    SingleCoreRun run;
    return run.run(counting_loop(core::or10n_config().features), {{1, n}});
  };
  EXPECT_EQ(cycles_for(101) - cycles_for(1), 100u);
}

TEST(CoreLoops, SwLoopPaysBranchPerIteration) {
  auto cycles_for = [](u32 n) {
    SingleCoreRun run(core::cortex_m4_config());
    return run.run(counting_loop(core::cortex_m4_config().features), {{1, n}});
  };
  // Per iteration: addi body + addi counter + taken bne (1 + penalty 2).
  const u64 per_iter = (cycles_for(101) - cycles_for(1)) / 100;
  EXPECT_EQ(per_iter, 1u + 1u + 1u + 2u);
}

TEST(CoreLoops, NestedHwLoops) {
  Builder bld(core::or10n_config().features);
  // r3 += 1, executed 5 * 7 times; inner count reloaded per outer trip.
  bld.li(1, 5);
  bld.li(2, 7);
  bld.loop(1, 10, [&] {
    bld.loop(2, 11, [&] { bld.emit(Opcode::kAddi, 3, 3, 0, 1); });
  });
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(3), 35u);
}

TEST(CoreLoops, NestedLoopsWithCoincidentEnds) {
  // The inner loop body is the LAST instruction of the outer body: both
  // hardware loops end on the same pc. The expiring inner loop must hand
  // over to the outer loop in the same pc-advance.
  Builder bld(core::or10n_config().features);
  bld.li(1, 4);
  bld.li(2, 3);
  bld.loop(1, 10, [&] {
    bld.emit(Opcode::kAddi, 4, 4, 0, 1);  // outer-body marker
    bld.loop(2, 11, [&] { bld.emit(Opcode::kAddi, 3, 3, 0, 1); });
  });
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(4), 4u);
  EXPECT_EQ(run.core.reg(3), 12u);
}

TEST(CoreLoops, ThreeDeepFallsBackToSoftware) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 2);
  bld.li(2, 3);
  bld.li(5, 4);
  bld.loop(1, 10, [&] {
    bld.loop(2, 11, [&] {
      bld.loop(5, 12, [&] { bld.emit(Opcode::kAddi, 3, 3, 0, 1); });
    });
  });
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(3), 24u);
}

TEST(CoreLoops, BranchesAndJal) {
  Builder bld(core::or10n_config().features);
  const auto skip = bld.make_label();
  bld.li(1, 5);
  bld.li(2, 5);
  bld.branch(Opcode::kBeq, 1, 2, skip);
  bld.li(3, 111);  // must be skipped
  bld.bind(skip);
  bld.li(4, 222);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(3), 0u);
  EXPECT_EQ(run.core.reg(4), 222u);
}

TEST(CoreLoops, JalLinksAndJalrReturns) {
  Builder bld(core::or10n_config().features);
  const auto func = bld.make_label();
  const auto after = bld.make_label();
  bld.jal(31, func);       // call
  bld.li(2, 99);           // executed after return
  bld.branch(Opcode::kBeq, 0, 0, after);
  bld.bind(func);
  bld.li(1, 42);           // function body
  bld.emit(Opcode::kJalr, 0, 31, 0);  // return
  bld.bind(after);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(1), 42u);
  EXPECT_EQ(run.core.reg(2), 99u);
}

TEST(CoreLoops, HwLoopGatedByFeature) {
  isa::Program p;
  p.code = {{Opcode::kLpSetup, 0, 1, 0, 1},
            {Opcode::kNop, 0, 0, 0, 0},
            {Opcode::kHalt, 0, 0, 0, 0}};
  SingleCoreRun run(core::cortex_m4_config());
  EXPECT_THROW(run.run(p, {{1, 3}}), SimError);
}

TEST(CoreLoops, RunawayPcIsCaught) {
  isa::Program p;
  p.code = {{Opcode::kNop, 0, 0, 0, 0}};  // no halt: pc runs off the end
  SingleCoreRun run;
  EXPECT_THROW(run.run(p), SimError);
}

}  // namespace
}  // namespace ulp
