#include <gtest/gtest.h>

#include "codegen/builder.hpp"
#include "testutil.hpp"

namespace ulp {
namespace {

using codegen::Builder;
using isa::Opcode;
using test::SingleCoreRun;

TEST(CoreMem, LoadStoreWidthsAndSignExtension) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 0x100);                        // base
  bld.li(2, 0xFFFFAB85);                   // value
  bld.emit(Opcode::kSw, 2, 1, 0, 0);       // [0x100] = value
  bld.emit(Opcode::kLw, 3, 1, 0, 0);       // word
  bld.emit(Opcode::kLh, 4, 1, 0, 0);       // signed half (0xAB85 -> neg)
  bld.emit(Opcode::kLhu, 5, 1, 0, 0);      // unsigned half
  bld.emit(Opcode::kLb, 6, 1, 0, 0);       // signed byte (0x85 -> neg)
  bld.emit(Opcode::kLbu, 7, 1, 0, 0);      // unsigned byte
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(3), 0xFFFFAB85u);
  EXPECT_EQ(run.core.reg(4), 0xFFFFAB85u);
  EXPECT_EQ(run.core.reg(5), 0x0000AB85u);
  EXPECT_EQ(run.core.reg(6), 0xFFFFFF85u);
  EXPECT_EQ(run.core.reg(7), 0x00000085u);
}

TEST(CoreMem, SubWordStoresLeaveNeighboursIntact) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 0x200);
  bld.li(2, 0x11223344);
  bld.emit(Opcode::kSw, 2, 1, 0, 0);
  bld.li(3, 0xAB);
  bld.emit(Opcode::kSb, 3, 1, 0, 1);  // overwrite byte 1
  bld.emit(Opcode::kLw, 4, 1, 0, 0);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(4), 0x1122AB44u);
}

TEST(CoreMem, PostIncrementAdvancesBase) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 0x100);
  bld.li(2, 7);
  bld.emit(Opcode::kSwpi, 2, 1, 0, 4);  // [0x100]=7, r1 += 4
  bld.emit(Opcode::kSwpi, 2, 1, 0, 4);  // [0x104]=7, r1 += 4
  bld.li(3, 0x100);
  bld.emit(Opcode::kLwpi, 4, 3, 0, 4);
  bld.emit(Opcode::kLwpi, 5, 3, 0, 4);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(1), 0x108u);
  EXPECT_EQ(run.core.reg(3), 0x108u);
  EXPECT_EQ(run.core.reg(4), 7u);
  EXPECT_EQ(run.core.reg(5), 7u);
}

TEST(CoreMem, PostIncrementGatedByFeature) {
  // The builder lowers post-increment on such targets; executing the raw
  // opcode on a core without the feature must trap.
  isa::Program p;
  p.code = {{Opcode::kLwpi, 2, 1, 0, 4}, {Opcode::kHalt, 0, 0, 0, 0}};
  SingleCoreRun run(core::baseline_config());
  EXPECT_THROW(run.run(p, {{1, 0x100}}), SimError);
}

TEST(CoreMem, UnalignedAccessSplitsOnOr10n) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 0x102);  // halfword-aligned, not word-aligned
  bld.li(2, 0xCAFEBABE);
  bld.emit(Opcode::kSw, 2, 1, 0, 0);
  bld.emit(Opcode::kLw, 3, 1, 0, 0);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.reg(3), 0xCAFEBABEu);
  // The straddled bytes really live at 0x102..0x105.
  EXPECT_EQ(run.bus.debug_load(0x102, 2, false), 0xBABEu);
  EXPECT_EQ(run.bus.debug_load(0x104, 2, false), 0xCAFEu);
}

TEST(CoreMem, UnalignedCostsOneExtraAccessCycle) {
  auto time_load = [](Addr addr) {
    Builder bld(core::or10n_config().features);
    bld.li(1, static_cast<u32>(addr));
    bld.emit(Opcode::kLw, 3, 1, 0, 0);
    bld.halt();
    SingleCoreRun run;
    return run.run(bld.finalize());
  };
  EXPECT_EQ(time_load(0x102) - time_load(0x100), 1u);
}

TEST(CoreMem, UnalignedTrapsWithoutFeature) {
  isa::Program p;
  p.code = {{Opcode::kLw, 3, 1, 0, 0}, {Opcode::kHalt, 0, 0, 0, 0}};
  SingleCoreRun run(core::baseline_config());
  EXPECT_THROW(run.run(p, {{1, 0x102}}), SimError);
}

TEST(CoreMem, LoadsCountInPerf) {
  Builder bld(core::or10n_config().features);
  bld.li(1, 0x100);
  bld.emit(Opcode::kLw, 2, 1, 0, 0);
  bld.emit(Opcode::kSw, 2, 1, 0, 4);
  bld.emit(Opcode::kLh, 3, 1, 0, 0);
  bld.halt();
  SingleCoreRun run;
  run.run(bld.finalize());
  EXPECT_EQ(run.core.perf().loads, 2u);
  EXPECT_EQ(run.core.perf().stores, 1u);
}

TEST(CoreMem, M3LoadsSlowerThanM4) {
  auto time_with = [](core::CoreConfig cfg) {
    Builder bld(cfg.features);
    bld.li(1, 0x100);
    for (int i = 0; i < 16; ++i) bld.emit(Opcode::kLw, 2, 1, 0, 0);
    bld.halt();
    SingleCoreRun run(std::move(cfg));
    return run.run(bld.finalize());
  };
  const u64 m4 = time_with(core::cortex_m4_config());
  const u64 m3 = time_with(core::cortex_m3_config());
  EXPECT_EQ(m3 - m4, 16u);  // one extra cycle per load
}

}  // namespace
}  // namespace ulp
