#include "isa/program.hpp"

#include <gtest/gtest.h>

#include "common/status.hpp"

namespace ulp::isa {
namespace {

Program sample_program() {
  Program p;
  p.code = {
      {Opcode::kAddi, 1, 0, 0, 64},
      {Opcode::kLpSetup, 0, 1, 0, 2},
      {Opcode::kLwpi, 2, 3, 0, 4},
      {Opcode::kMac, 4, 2, 2, 0},
      {Opcode::kEoc, 0, 0, 0, 1},
  };
  p.data.push_back({0x10000000, {1, 2, 3, 4, 5}});
  p.data.push_back({0x1C000100, {9, 8, 7, 6}});
  p.entry = 0;
  return p;
}

TEST(Program, SerializeDeserializeRoundTrip) {
  const Program p = sample_program();
  const std::vector<u8> image = serialize(p);
  const Program q = deserialize(image);
  EXPECT_EQ(q.code, p.code);
  EXPECT_EQ(q.entry, p.entry);
  ASSERT_EQ(q.data.size(), p.data.size());
  for (size_t i = 0; i < p.data.size(); ++i) {
    EXPECT_EQ(q.data[i].addr, p.data[i].addr);
    EXPECT_EQ(q.data[i].bytes, p.data[i].bytes);
  }
}

TEST(Program, ImageSizeMatchesSerializedLength) {
  const Program p = sample_program();
  EXPECT_EQ(serialize(p).size(), p.image_size_bytes());
}

TEST(Program, ImageSizeAccountsPadding) {
  Program p;
  p.code = {{Opcode::kHalt, 0, 0, 0, 0}};
  p.data.push_back({0, {1}});  // 1 byte -> padded to 4
  EXPECT_EQ(p.image_size_bytes(), 16u + 4u + 8u + 4u);
  EXPECT_EQ(serialize(p).size(), p.image_size_bytes());
}

TEST(Program, RejectsCorruptMagic) {
  std::vector<u8> image = serialize(sample_program());
  image[0] ^= 0xFF;
  EXPECT_THROW((void)deserialize(image), SimError);
}

TEST(Program, RejectsTruncatedImage) {
  std::vector<u8> image = serialize(sample_program());
  image.resize(image.size() - 3);
  EXPECT_THROW((void)deserialize(image), SimError);
}

TEST(Program, RejectsTrailingGarbage) {
  std::vector<u8> image = serialize(sample_program());
  image.push_back(0);
  image.push_back(0);
  image.push_back(0);
  image.push_back(0);
  EXPECT_THROW((void)deserialize(image), SimError);
}

TEST(Program, CodeSizeBytes) {
  EXPECT_EQ(sample_program().code_size_bytes(), 5u * 4u);
}

}  // namespace
}  // namespace ulp::isa
