#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "isa/disasm.hpp"

namespace ulp::isa {
namespace {

// Picks a random immediate valid for the opcode's format.
i32 random_imm(Rng& rng, Opcode op) {
  switch (op_info(op).fmt) {
    case Fmt::kR:
      return 0;
    case Fmt::kLui:
      return rng.uniform(0, (1 << 20) - 1);
    case Fmt::kJ:
      return rng.uniform(-(1 << 19), (1 << 19) - 1);
    default:
      return rng.uniform(-(1 << 14), (1 << 14) - 1);
  }
}

TEST(Encoding, RoundTripFuzzAllOpcodes) {
  Rng rng(0xDEADBEEF);
  for (size_t opi = 0; opi < kNumOpcodes; ++opi) {
    const auto op = static_cast<Opcode>(opi);
    for (int trial = 0; trial < 200; ++trial) {
      Instr in;
      in.op = op;
      const Fmt fmt = op_info(op).fmt;
      // Populate only fields the format encodes; others must stay zero for
      // equality to hold after decode.
      switch (fmt) {
        case Fmt::kR:
          in.rd = static_cast<u8>(rng.uniform(0, 31));
          in.ra = static_cast<u8>(rng.uniform(0, 31));
          in.rb = static_cast<u8>(rng.uniform(0, 31));
          break;
        case Fmt::kI:
        case Fmt::kMem:
        case Fmt::kLp:
          in.rd = static_cast<u8>(rng.uniform(0, 31));
          in.ra = static_cast<u8>(rng.uniform(0, 31));
          break;
        case Fmt::kB:
          in.ra = static_cast<u8>(rng.uniform(0, 31));
          in.rb = static_cast<u8>(rng.uniform(0, 31));
          break;
        case Fmt::kLui:
        case Fmt::kJ:
        case Fmt::kSys:
          in.rd = static_cast<u8>(rng.uniform(0, 31));
          break;
      }
      in.imm = random_imm(rng, op);
      const u32 word = encode(in);
      const Instr back = decode(word);
      EXPECT_EQ(back, in) << disassemble(in) << " -> " << disassemble(back);
    }
  }
}

TEST(Encoding, RejectsOutOfRangeImmediates) {
  Instr in;
  in.op = Opcode::kAddi;
  in.imm = 1 << 14;  // one past the 15-bit signed max
  EXPECT_THROW((void)encode(in), SimError);
  in.imm = -(1 << 14) - 1;
  EXPECT_THROW((void)encode(in), SimError);
  in.imm = (1 << 14) - 1;
  EXPECT_NO_THROW((void)encode(in));
}

TEST(Encoding, RejectsInvalidOpcodeWord) {
  const u32 bad = static_cast<u32>(kNumOpcodes) << 25;
  EXPECT_THROW((void)decode(bad), SimError);
}

TEST(Encoding, ImmFitsMatchesFormats) {
  EXPECT_TRUE(imm_fits(Opcode::kLui, (1 << 20) - 1));
  EXPECT_FALSE(imm_fits(Opcode::kLui, 1 << 20));
  EXPECT_FALSE(imm_fits(Opcode::kLui, -1));
  EXPECT_TRUE(imm_fits(Opcode::kJal, -(1 << 19)));
  EXPECT_FALSE(imm_fits(Opcode::kJal, 1 << 19));
  EXPECT_TRUE(imm_fits(Opcode::kAdd, 0));
  EXPECT_FALSE(imm_fits(Opcode::kAdd, 1));
}

TEST(Disasm, KnownPatterns) {
  EXPECT_EQ(disassemble({Opcode::kMac, 3, 4, 5, 0}), "mac r3, r4, r5");
  EXPECT_EQ(disassemble({Opcode::kLw, 1, 2, 0, 8}), "lw r1, 8(r2)");
  EXPECT_EQ(disassemble({Opcode::kBeq, 0, 1, 2, -12}), "beq r1, r2, -12");
  EXPECT_EQ(disassemble({Opcode::kLpSetup, 1, 5, 0, 3}), "lp.setup 1, r5, 3");
  EXPECT_EQ(disassemble({Opcode::kBarrier, 0, 0, 0, 0}), "barrier");
}

TEST(OpClassification, LoadsStoresAndSizes) {
  EXPECT_TRUE(is_load(Opcode::kLw));
  EXPECT_TRUE(is_load(Opcode::kLbupi));
  EXPECT_FALSE(is_load(Opcode::kSw));
  EXPECT_TRUE(is_store(Opcode::kSbpi));
  EXPECT_TRUE(is_postinc(Opcode::kLwpi));
  EXPECT_FALSE(is_postinc(Opcode::kLw));
  EXPECT_EQ(access_size(Opcode::kLw), 4);
  EXPECT_EQ(access_size(Opcode::kLhu), 2);
  EXPECT_EQ(access_size(Opcode::kSbpi), 1);
  EXPECT_TRUE(is_branch(Opcode::kBgeu));
  EXPECT_FALSE(is_branch(Opcode::kJal));
  EXPECT_TRUE(is_simd(Opcode::kDotp4b));
  EXPECT_FALSE(is_simd(Opcode::kMac));
}

}  // namespace
}  // namespace ulp::isa
