// Differential-harness tests: generator determinism and structural
// guarantees, three-way single-core checks, multi-core stress invariants,
// and a seeded mini-campaign that must come back clean.
#include <gtest/gtest.h>

#include "verif/differential.hpp"
#include "verif/generator.hpp"

namespace ulp::verif {
namespace {

TEST(Generator, DeterministicBitForBit) {
  GenParams p;
  p.seed = 0x1234'5678'9abc'def0ull;
  const GenProgram a = generate(p);
  const GenProgram b = generate(p);
  ASSERT_EQ(a.program.code.size(), b.program.code.size());
  for (size_t i = 0; i < a.program.code.size(); ++i) {
    EXPECT_EQ(a.program.code[i], b.program.code[i]) << "instr " << i;
  }
  ASSERT_EQ(a.program.data.size(), b.program.data.size());
  for (size_t i = 0; i < a.program.data.size(); ++i) {
    EXPECT_EQ(a.program.data[i].addr, b.program.data[i].addr);
    EXPECT_EQ(a.program.data[i].bytes, b.program.data[i].bytes);
  }
  EXPECT_EQ(a.deterministic_retire, b.deterministic_retire);
}

TEST(Generator, DifferentSeedsDiffer) {
  GenParams p;
  p.seed = 1;
  const GenProgram a = generate(p);
  p.seed = 2;
  const GenProgram b = generate(p);
  EXPECT_NE(a.program.code, b.program.code);
}

TEST(Generator, ProfilesGateFeatures) {
  for (const char* name : {"full", "baseline", "or10n", "cortex_m4",
                           "cortex_m3"}) {
    GenParams p;
    p.seed = 77;
    p.profile = name;
    const GenProgram gp = generate(p);
    const auto& f = gp.config.features;
    for (const isa::Instr& in : gp.program.code) {
      if (!f.has_hwloops) EXPECT_NE(in.op, isa::Opcode::kLpSetup) << name;
      if (!f.has_mac) EXPECT_NE(in.op, isa::Opcode::kMac) << name;
      if (!f.has_simd) {
        EXPECT_NE(in.op, isa::Opcode::kDotp2h) << name;
        EXPECT_NE(in.op, isa::Opcode::kDotp4b) << name;
      }
      if (!f.has_postinc) {
        EXPECT_NE(in.op, isa::Opcode::kLwpi) << name;
        EXPECT_NE(in.op, isa::Opcode::kSwpi) << name;
      }
    }
  }
}

TEST(Generator, UnknownProfileThrows) {
  GenParams p;
  p.profile = "no-such-core";
  EXPECT_THROW((void)generate(p), SimError);
}

TEST(Generator, ProgramsEndInHaltOrEoc) {
  for (u64 seed = 1; seed <= 24; ++seed) {
    GenParams p;
    p.seed = seed;
    const GenProgram gp = generate(p);
    ASSERT_FALSE(gp.program.code.empty());
    bool has_halt = false;
    for (const isa::Instr& in : gp.program.code) {
      if (in.op == isa::Opcode::kHalt || in.op == isa::Opcode::kEoc) {
        has_halt = true;
      }
    }
    EXPECT_TRUE(has_halt) << "seed " << seed;
  }
}

TEST(Differential, SingleCoreProgramsPassThreeWay) {
  for (u64 seed = 100; seed < 112; ++seed) {
    GenParams p;
    p.seed = seed;
    const DiffResult r = check_program(generate(p));
    EXPECT_TRUE(r.pass) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Differential, RestrictedProfilesPass) {
  for (const char* name : {"baseline", "or10n", "cortex_m4"}) {
    for (u64 seed = 40; seed < 46; ++seed) {
      GenParams p;
      p.seed = seed;
      p.profile = name;
      const DiffResult r = check_program(generate(p));
      EXPECT_TRUE(r.pass) << name << " seed " << seed << ": " << r.detail;
    }
  }
}

TEST(Differential, StressSchedulesConvergeAndAgree) {
  for (u32 cores = 2; cores <= 4; ++cores) {
    GenParams p;
    p.seed = 7000 + cores;
    p.num_cores = cores;
    const DiffResult r = check_program(generate(p));
    EXPECT_TRUE(r.pass) << cores << " cores: " << r.detail;
  }
}

TEST(Differential, RunOnClusterModesMatch) {
  GenParams p;
  p.seed = 0xFEED;
  const GenProgram gp = generate(p);
  const Observation ref = run_on_cluster(gp, /*reference_stepping=*/true);
  const Observation ff = run_on_cluster(gp, /*reference_stepping=*/false);
  EXPECT_EQ(ref.cycles, ff.cycles);
  EXPECT_EQ(ref.regs, ff.regs);
  EXPECT_EQ(ref.tcdm, ff.tcdm);
  EXPECT_EQ(ref.eoc, ff.eoc);
}

TEST(Campaign, MemberSeedsAreDistinctAndStable) {
  CampaignParams p;
  p.seed = 99;
  const GenParams a = campaign_member(p, 0, /*stress=*/false);
  const GenParams b = campaign_member(p, 1, /*stress=*/false);
  const GenParams a2 = campaign_member(p, 0, /*stress=*/false);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_EQ(a.seed, a2.seed);
  EXPECT_EQ(a.num_cores, 1u);
  const GenParams s = campaign_member(p, 0, /*stress=*/true);
  EXPECT_GE(s.num_cores, 2u);
  EXPECT_NE(s.seed, a.seed);
}

TEST(Campaign, StripesRestrictedProfiles) {
  CampaignParams p;
  bool saw_restricted = false;
  for (u32 i = 0; i < 20; ++i) {
    if (campaign_member(p, i, false).profile != "full") saw_restricted = true;
  }
  EXPECT_TRUE(saw_restricted);
}

TEST(Campaign, SeededMiniCampaignIsClean) {
  CampaignParams p;
  p.seed = 0xD1FF'BEEFull;
  p.num_programs = 80;
  p.num_stress = 20;
  const CampaignResult r = run_campaign(p);
  EXPECT_EQ(r.programs_run, 80u);
  EXPECT_EQ(r.stress_run, 20u);
  EXPECT_TRUE(r.pass());
  for (const CampaignFailure& f : r.failures) {
    ADD_FAILURE() << "seed 0x" << std::hex << f.params.seed << ": "
                  << f.detail;
  }
}

}  // namespace
}  // namespace ulp::verif
