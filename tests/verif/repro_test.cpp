// .repro round-trip tests: parse(format(x)) reproduces x bit for bit, the
// parser reports malformed input with line numbers, and the file wrappers
// survive a disk round trip.
#include <gtest/gtest.h>

#include <cstdio>

#include "verif/differential.hpp"
#include "verif/repro.hpp"

namespace ulp::verif {
namespace {

GenProgram sample(u64 seed, u32 cores = 1) {
  GenParams p;
  p.seed = seed;
  p.num_cores = cores;
  return generate(p);
}

void expect_same(const GenProgram& a, const GenProgram& b) {
  EXPECT_EQ(a.program.code, b.program.code);
  EXPECT_EQ(a.program.entry, b.program.entry);
  ASSERT_EQ(a.program.data.size(), b.program.data.size());
  for (size_t i = 0; i < a.program.data.size(); ++i) {
    EXPECT_EQ(a.program.data[i].addr, b.program.data[i].addr);
    EXPECT_EQ(a.program.data[i].bytes, b.program.data[i].bytes);
  }
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.profile, b.profile);
  EXPECT_EQ(a.num_cores, b.num_cores);
  EXPECT_EQ(a.deterministic_retire, b.deterministic_retire);
  ASSERT_EQ(a.dma_copies.size(), b.dma_copies.size());
  for (size_t i = 0; i < a.dma_copies.size(); ++i) {
    EXPECT_EQ(a.dma_copies[i].src, b.dma_copies[i].src);
    EXPECT_EQ(a.dma_copies[i].dst, b.dma_copies[i].dst);
    EXPECT_EQ(a.dma_copies[i].len, b.dma_copies[i].len);
  }
}

TEST(Repro, RoundTripsBitForBit) {
  for (u64 seed : {1ull, 42ull, 0xDEAD'BEEFull}) {
    const GenProgram gp = sample(seed);
    expect_same(gp, parse_repro(format_repro(gp)));
  }
}

TEST(Repro, RoundTripsStressPrograms) {
  const GenProgram gp = sample(1234, /*cores=*/3);
  const GenProgram back = parse_repro(format_repro(gp));
  expect_same(gp, back);
  EXPECT_EQ(back.num_cores, 3u);
}

TEST(Repro, FormatIsStableUnderDoubleRoundTrip) {
  const GenProgram gp = sample(55);
  const std::string once = format_repro(gp);
  EXPECT_EQ(once, format_repro(parse_repro(once)));
}

TEST(Repro, ParsedProgramStillPassesDifferentially) {
  const GenProgram gp = sample(0xBEEF);
  const DiffResult r = check_program(parse_repro(format_repro(gp)));
  EXPECT_TRUE(r.pass) << r.detail;
}

TEST(Repro, SaveAndLoadFile) {
  const GenProgram gp = sample(9);
  const std::string path =
      testing::TempDir() + "/ulp_repro_roundtrip.repro";
  ASSERT_TRUE(save_repro(gp, path).ok());
  expect_same(gp, load_repro(path));
  std::remove(path.c_str());
}

TEST(ReproErrors, UnknownDirective) {
  EXPECT_THROW((void)parse_repro(".bogus 1\n.code\n    halt\n"), SimError);
}

TEST(ReproErrors, UnknownProfile) {
  EXPECT_THROW(
      (void)parse_repro(".profile z80\n.code\n    halt\n"), SimError);
}

TEST(ReproErrors, BadHexInDataSegment) {
  EXPECT_THROW((void)parse_repro(
                   ".data 0x10000000 zz\n.code\n    halt\n"),
               SimError);
}

TEST(ReproErrors, MissingCodeBlock) {
  EXPECT_THROW((void)parse_repro(".seed 0x1\n"), SimError);
}

TEST(ReproErrors, MalformedInstructionDefersToAssembler) {
  EXPECT_THROW((void)parse_repro(".code\n    frobnicate r1, r2\n"),
               SimError);
}

TEST(ReproErrors, MissingFile) {
  EXPECT_THROW((void)load_repro("/nonexistent/dir/x.repro"), SimError);
}

}  // namespace
}  // namespace ulp::verif
