// Unit tests for the independent golden interpreter: architectural
// semantics against hand-computed values, and the error statuses it must
// return for everything a constrained-random program is forbidden to do.
#include <gtest/gtest.h>

#include "codegen/assembler.hpp"
#include "verif/golden.hpp"

namespace ulp::verif {
namespace {

constexpr Addr kTcdm = 0x10000000;
constexpr Addr kDma = 0x10200000;
constexpr Addr kL2 = 0x1C000000;

isa::Program prog(std::string_view src) { return codegen::assemble(src); }

Golden run_ok(const isa::Program& p, GoldenParams params = {}) {
  Golden g(params);
  const Status s = g.run(p);
  EXPECT_TRUE(s.ok()) << s.message();
  return g;
}

TEST(Golden, AluAndImmediates) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 100
      addi r2, r0, -7
      add  r3, r1, r2
      sub  r4, r1, r2
      xori r5, r1, 0xff
      slli r6, r1, 3
      srai r7, r2, 1
      sltu r8, r2, r1
      slt  r9, r2, r1
      halt
  )"));
  EXPECT_EQ(g.reg(3), 93u);
  EXPECT_EQ(g.reg(4), 107u);
  EXPECT_EQ(g.reg(5), 100u ^ 0xffu);
  EXPECT_EQ(g.reg(6), 800u);
  EXPECT_EQ(g.reg(7), static_cast<u32>(-4));
  EXPECT_EQ(g.reg(8), 0u);  // unsigned: 0xfffffff9 > 100
  EXPECT_EQ(g.reg(9), 1u);  // signed: -7 < 100
}

TEST(Golden, R0IsHardwiredZero) {
  const Golden g = run_ok(prog(R"(
      addi r0, r0, 55
      add  r1, r0, r0
      halt
  )"));
  EXPECT_EQ(g.reg(0), 0u);
  EXPECT_EQ(g.reg(1), 0u);
}

TEST(Golden, ShiftAmountsMaskToFiveBits) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 1
      addi r2, r0, 33
      sll  r3, r1, r2
      halt
  )"));
  EXPECT_EQ(g.reg(3), 2u);  // 33 & 31 == 1
}

TEST(Golden, DivisionEdgeCases) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 7
      div  r2, r1, r0          ; divide by zero
      rem  r3, r1, r0
      lui  r4, 0x80000
      addi r5, r0, -1
      div  r6, r4, r5          ; INT_MIN / -1 overflow
      rem  r7, r4, r5
      halt
  )"));
  EXPECT_EQ(g.reg(2), 0xFFFFFFFFu);
  EXPECT_EQ(g.reg(3), 7u);
  EXPECT_EQ(g.reg(6), 0x80000000u);
  EXPECT_EQ(g.reg(7), 0u);
}

TEST(Golden, MacAccumulates) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 3
      addi r2, r0, 4
      addi r3, r0, 100
      mac  r3, r1, r2
      mac  r3, r1, r2
      halt
  )"));
  EXPECT_EQ(g.reg(3), 124u);
}

TEST(Golden, MemorySignExtensionAndBytes) {
  const Golden g = run_ok(prog(R"(
      lui  r1, 0x10000
      addi r2, r0, -2        ; 0xfffffffe
      sw   r2, 0(r1)
      lh   r3, 0(r1)         ; sign-extended halfword
      lhu  r4, 0(r1)
      lb   r5, 0(r1)
      lbu  r6, 0(r1)
      halt
  )"));
  EXPECT_EQ(g.reg(3), 0xFFFFFFFEu);
  EXPECT_EQ(g.reg(4), 0x0000FFFEu);
  EXPECT_EQ(g.reg(5), 0xFFFFFFFEu);
  EXPECT_EQ(g.reg(6), 0x000000FEu);
  EXPECT_EQ(g.tcdm()[0], 0xFEu);
  EXPECT_EQ(g.tcdm()[1], 0xFFu);
}

TEST(Golden, PostIncrementUsesPreIncrementBase) {
  const Golden g = run_ok(prog(R"(
      lui  r1, 0x10000
      addi r2, r0, 17
      sw!  r2, 4(r1)         ; store at +0, then r1 += 4
      addi r3, r0, 34
      sw!  r3, 4(r1)         ; store at +4
      lui  r4, 0x10000
      lw!  r5, 4(r4)         ; load from +0, then r4 += 4
      lw   r6, 0(r4)
      halt
  )"));
  EXPECT_EQ(g.reg(5), 17u);
  EXPECT_EQ(g.reg(6), 34u);
  EXPECT_EQ(g.reg(1), kTcdm + 8);
}

TEST(Golden, PostIncrementLoadAliasWritesDataThenSteps) {
  // rd == ra on a post-increment load: the loaded value lands in rd, then
  // the step is applied to that NEW value.
  const Golden g = run_ok(prog(R"(
      lui  r1, 0x10000
      addi r2, r0, 1000
      sw   r2, 0(r1)
      lw!  r1, 4(r1)
      halt
  )"));
  EXPECT_EQ(g.reg(1), 1004u);
}

TEST(Golden, HardwareLoopCountsExactly) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 5
      lp.setup 0, r1, end
      addi r2, r2, 1
  end:
      halt
  )"));
  EXPECT_EQ(g.reg(2), 5u);
}

TEST(Golden, HardwareLoopZeroCountSkipsBody) {
  const Golden g = run_ok(prog(R"(
      lp.setup 0, r0, end
      addi r2, r2, 1
  end:
      halt
  )"));
  EXPECT_EQ(g.reg(2), 0u);
}

TEST(Golden, NestedHardwareLoops) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 3
      addi r2, r0, 4
      lp.setup 0, r1, outer_end
      lp.setup 1, r2, inner_end
      addi r3, r3, 1
  inner_end:
      addi r4, r4, 1
  outer_end:
      halt
  )"));
  EXPECT_EQ(g.reg(3), 12u);
  EXPECT_EQ(g.reg(4), 3u);
}

TEST(Golden, BranchesAndJal) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 10
      addi r2, r0, 10
      bne  r1, r2, skip
      addi r3, r0, 1
  skip:
      jal  r4, sub
      addi r5, r0, 99
      halt
  sub:
      addi r6, r0, 7
      jalr r0, r4, r0
  )"));
  EXPECT_EQ(g.reg(3), 1u);   // bne not taken
  EXPECT_EQ(g.reg(5), 99u);  // returned after the call site
  EXPECT_EQ(g.reg(6), 7u);
}

TEST(Golden, SevThenWfeAndEoc) {
  const Golden g = run_ok(prog(R"(
      sev 0
      wfe
      eoc 42
  )"));
  ASSERT_TRUE(g.eoc().has_value());
  EXPECT_EQ(*g.eoc(), 42u);
}

TEST(Golden, CsrCoreIdAndNumCores) {
  const Golden g = run_ok(prog(R"(
      csrr r1, 0
      csrr r2, 1
      halt
  )"));
  EXPECT_EQ(g.reg(1), 0u);
  EXPECT_EQ(g.reg(2), 1u);
}

TEST(Golden, DataSegmentsLoadIntoBothMemories) {
  isa::Program p = prog(R"(
      lui  r1, 0x10000
      lw   r2, 0(r1)
      lui  r3, 0x1c000
      lw   r4, 0(r3)
      halt
  )");
  p.data.push_back({kTcdm, {0x78, 0x56, 0x34, 0x12}});
  p.data.push_back({kL2, {0xEF, 0xBE, 0xAD, 0xDE}});
  const Golden g = run_ok(p);
  EXPECT_EQ(g.reg(2), 0x12345678u);
  EXPECT_EQ(g.reg(4), 0xDEADBEEFu);
}

TEST(Golden, DmaCompletesInstantlyAndPendsEvent) {
  isa::Program p = prog(R"(
      lui  r1, 0x10200        ; DMA register window
      lui  r2, 0x1c000        ; src in L2
      lui  r3, 0x10000        ; dst in TCDM
      addi r4, r0, 8
      sw   r2, 0(r1)          ; SRC
      sw   r3, 4(r1)          ; DST
      sw   r4, 8(r1)          ; LEN
      addi r5, r0, 1
      sw   r5, 12(r1)         ; CMD: go
      wfe                     ; completion event already pending
      lw   r6, 16(r1)         ; STATUS reads 0 (instant completion)
      lw   r7, 0(r3)
      halt
  )");
  p.data.push_back({kL2, {1, 2, 3, 4, 5, 6, 7, 8}});
  const Golden g = run_ok(p);
  EXPECT_EQ(g.reg(6), 0u);
  EXPECT_EQ(g.reg(7), 0x04030201u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(g.tcdm()[i], i + 1);
}

TEST(Golden, RetireLogRecordsPcAndInstruction) {
  const Golden g = run_ok(prog(R"(
      addi r1, r0, 1
      halt
  )"));
  ASSERT_EQ(g.retire_log().size(), 2u);
  EXPECT_EQ(g.retire_log()[0].pc, 0u);
  EXPECT_EQ(g.retire_log()[0].instr.op, isa::Opcode::kAddi);
  EXPECT_EQ(g.retire_log()[1].instr.op, isa::Opcode::kHalt);
  EXPECT_EQ(g.retired(), 2u);
}

// ---- forbidden behaviours must come back as error statuses -------------

TEST(GoldenErrors, PcRunsPastProgramEnd) {
  Golden g;
  EXPECT_FALSE(g.run(prog("addi r1, r0, 1")).ok());
}

TEST(GoldenErrors, WfeWithNoPendingEventIsALostWakeup) {
  Golden g;
  const Status s = g.run(prog("wfe\nhalt"));
  EXPECT_FALSE(s.ok());
}

TEST(GoldenErrors, UnmappedAccess) {
  Golden g;
  EXPECT_FALSE(g.run(prog(R"(
      lui r1, 0x20000
      lw  r2, 0(r1)
      halt
  )")).ok());
}

TEST(GoldenErrors, CycleCsrIsTimingDependent) {
  Golden g;
  EXPECT_FALSE(g.run(prog("csrr r1, 2\nhalt")).ok());
}

TEST(GoldenErrors, RetireBudgetCatchesRunaways) {
  GoldenParams params;
  params.max_retired = 100;
  Golden g(params);
  EXPECT_FALSE(g.run(prog(R"(
  loop:
      jal r0, loop
      halt
  )")).ok());
}

TEST(GoldenErrors, MisalignedDmaPointer) {
  Golden g;
  EXPECT_FALSE(g.run(prog(R"(
      lui  r1, 0x10200
      lui  r2, 0x1c000
      addi r2, r2, 2          ; unaligned source
      sw   r2, 0(r1)
      lui  r3, 0x10000
      sw   r3, 4(r1)
      addi r4, r0, 4
      sw   r4, 8(r1)
      addi r5, r0, 1
      sw   r5, 12(r1)
      halt
  )")).ok());
}

}  // namespace
}  // namespace ulp::verif
