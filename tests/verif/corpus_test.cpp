// Committed-corpus replay: every .repro under tests/verif/corpus/ must
// parse, survive a format/parse round trip bit for bit, and pass the full
// differential check (golden + the whole cluster stepping matrix — per-cycle
// reference, plain fast-forward, block-cached fast-forward — for single-core
// entries, stress invariants for multi-core ones).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "verif/differential.hpp"
#include "verif/repro.hpp"

#ifndef ULP_VERIF_CORPUS_DIR
#error "build must define ULP_VERIF_CORPUS_DIR"
#endif

namespace ulp::verif {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ULP_VERIF_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, IsCommittedAndNonTrivial) {
  EXPECT_GE(corpus_files().size(), 20u)
      << "corpus at " << ULP_VERIF_CORPUS_DIR << " is missing entries";
}

TEST(Corpus, EveryEntryRoundTripsBitForBit) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const GenProgram gp = load_repro(path);
    const GenProgram back = parse_repro(format_repro(gp));
    EXPECT_EQ(gp.program.code, back.program.code);
    EXPECT_EQ(gp.program.entry, back.program.entry);
    ASSERT_EQ(gp.program.data.size(), back.program.data.size());
    for (size_t i = 0; i < gp.program.data.size(); ++i) {
      EXPECT_EQ(gp.program.data[i].addr, back.program.data[i].addr);
      EXPECT_EQ(gp.program.data[i].bytes, back.program.data[i].bytes);
    }
  }
}

TEST(Corpus, EveryEntryPassesDifferentially) {
  u32 single = 0;
  u32 stress = 0;
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const GenProgram gp = load_repro(path);
    (gp.num_cores == 1 ? single : stress) += 1;
    const DiffResult r = check_program(gp);
    EXPECT_TRUE(r.pass) << r.detail;
  }
  // The corpus must keep both harness halves exercised.
  EXPECT_GT(single, 0u);
  EXPECT_GT(stress, 0u);
}

// Every committed entry replayed with the block cache pinned off and pinned
// on must land on identical cycle counts and final state — independent of
// whatever check_program ran, and across the whole corpus rather than one
// representative program.
TEST(Corpus, ReplayAgreesAcrossBlockModes) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const GenProgram gp = load_repro(path);
    const Observation off =
        run_on_cluster(gp, /*reference_stepping=*/false,
                       /*max_cycles=*/5'000'000, /*cov=*/nullptr,
                       /*block_cache=*/false);
    const Observation on =
        run_on_cluster(gp, /*reference_stepping=*/false,
                       /*max_cycles=*/5'000'000, /*cov=*/nullptr,
                       /*block_cache=*/true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.eoc, on.eoc);
    EXPECT_EQ(off.eoc_flag, on.eoc_flag);
    EXPECT_EQ(off.barriers_completed, on.barriers_completed);
    EXPECT_EQ(off.regs, on.regs);
    EXPECT_EQ(off.tcdm, on.tcdm);
    EXPECT_EQ(off.l2, on.l2);
    EXPECT_EQ(off.retires, on.retires);
  }
}

TEST(Corpus, ReplayIsDeterministic) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty());
  const GenProgram gp = load_repro(files.front());
  const Observation a = run_on_cluster(gp, /*reference_stepping=*/true);
  const Observation b = run_on_cluster(gp, /*reference_stepping=*/true);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.tcdm, b.tcdm);
}

}  // namespace
}  // namespace ulp::verif
