// Auto-shrinker tests: category matching, custom-oracle reduction, and the
// verifier-verification loop the subsystem exists for — an injected
// off-by-one in the core's hardware-loop expiry check must be detected by
// the differential harness and shrunk to a minimal repro.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "verif/differential.hpp"
#include "verif/generator.hpp"
#include "verif/shrink.hpp"

namespace ulp::verif {
namespace {

using isa::Opcode;

TEST(FailureCategory, PrefixBeforeColon) {
  EXPECT_EQ(failure_category("golden-vs-cluster: r3 = 1 vs 2"),
            "golden-vs-cluster");
  EXPECT_EQ(failure_category("no colon at all"), "no colon at all");
}

TEST(FailureCategory, FoldsInTheFailedCheckCondition) {
  const std::string a =
      "cluster(ref): core.cpp:436: check failed (f.has_unaligned): bad";
  const std::string b =
      "cluster(ref): core.cpp:512: check failed (f.has_postinc): bad";
  EXPECT_NE(failure_category(a), failure_category(b));
  EXPECT_EQ(failure_category(a), "cluster(ref)/f.has_unaligned");
}

// Shrink against a synthetic oracle: "fails" while any MAC remains. The
// shrinker must strip everything else and keep exactly the failure kernel.
TEST(Shrink, CustomOracleReducesToTheFailureKernel) {
  GenParams p;
  p.seed = 0xAB5EED;
  const GenProgram gp = generate(p);
  u32 macs = 0;
  for (const isa::Instr& in : gp.program.code) {
    macs += in.op == Opcode::kMac;
  }
  ASSERT_GT(macs, 0u) << "seed produced no MACs; pick another";

  const ShrinkOracle oracle = [](const GenProgram& cand) -> std::string {
    for (const isa::Instr& in : cand.program.code) {
      if (in.op == Opcode::kMac) return "synthetic: mac still present";
    }
    return {};
  };
  const ShrinkResult r = shrink(gp, "synthetic: mac still present", oracle);
  EXPECT_LE(r.shrunk_instrs, 2u);
  EXPECT_LT(r.shrunk_instrs, r.original_instrs);
  bool mac_left = false;
  for (const isa::Instr& in : r.program.program.code) {
    mac_left |= in.op == Opcode::kMac;
  }
  EXPECT_TRUE(mac_left);
}

TEST(Shrink, PassingProgramDoesNotShrink) {
  GenParams p;
  p.seed = 3;
  const GenProgram gp = generate(p);
  const ShrinkOracle never_fails = [](const GenProgram&) {
    return std::string{};
  };
  const ShrinkResult r = shrink(gp, "stale detail", never_fails);
  EXPECT_EQ(r.shrunk_instrs, r.original_instrs);
}

// The acceptance-criteria self test: enable the deliberately injected
// hardware-loop off-by-one (cores run every hw loop one iteration short),
// let the campaign catch it, and shrink the divergence to a minimal repro.
TEST(Shrink, InjectedHwLoopBugIsCaughtAndShrinksSmall) {
  config::set_inject_hwloop_bug(true);
  struct Restore {
    ~Restore() { config::set_inject_hwloop_bug(false); }
  } restore;

  // Find a failing program the way the campaign would.
  CampaignParams cp;
  cp.seed = 0x10CA15EEDull;
  GenProgram failing;
  std::string detail;
  bool found = false;
  for (u32 i = 0; i < 40 && !found; ++i) {
    const GenParams gen = campaign_member(cp, i, /*stress=*/false);
    if (profile_config(gen.profile).features.has_hwloops == false) continue;
    const GenProgram gp = generate(gen);
    const DiffResult r = check_program(gp);
    if (!r.pass) {
      failing = gp;
      detail = r.detail;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "injected bug escaped a 40-program campaign";
  EXPECT_NE(detail.find("golden-vs-cluster"), std::string::npos) << detail;

  const ShrinkResult r = shrink(failing, detail);
  EXPECT_LE(r.shrunk_instrs, 10u)
      << "repro not minimal: " << r.shrunk_instrs << " instrs";
  EXPECT_FALSE(r.detail.empty());

  // The shrunken repro still fails with the bug on...
  const DiffResult with_bug = check_program(r.program);
  EXPECT_FALSE(with_bug.pass);

  // ...and passes once the fault is removed, proving the divergence is the
  // injected bug and not a shrinker artefact.
  config::set_inject_hwloop_bug(false);
  const DiffResult without_bug = check_program(r.program);
  EXPECT_TRUE(without_bug.pass) << without_bug.detail;
}

}  // namespace
}  // namespace ulp::verif
