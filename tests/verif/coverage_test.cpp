// Coverage-accounting tests: tally/merge/unexercised mechanics, and the
// campaign-level guarantee that a seeded default-shape run leaves no
// implemented opcode at zero.
#include <gtest/gtest.h>

#include "verif/coverage.hpp"
#include "verif/differential.hpp"

namespace ulp::verif {
namespace {

using isa::Instr;
using isa::Opcode;

TEST(Coverage, TalliesPerOpcode) {
  Coverage c;
  c.record(Instr{Opcode::kAdd});
  c.record(Instr{Opcode::kAdd});
  c.record(Instr{Opcode::kMac});
  EXPECT_EQ(c.count(Opcode::kAdd), 2u);
  EXPECT_EQ(c.count(Opcode::kMac), 1u);
  EXPECT_EQ(c.count(Opcode::kSub), 0u);
  EXPECT_EQ(c.total(), 3u);
}

TEST(Coverage, UnexercisedListsEveryZeroOpcode) {
  Coverage c;
  EXPECT_EQ(c.unexercised().size(), isa::kNumOpcodes);
  for (size_t i = 0; i < isa::kNumOpcodes; ++i) {
    c.record(Instr{static_cast<Opcode>(i)});
  }
  EXPECT_TRUE(c.unexercised().empty());
}

TEST(Coverage, MergeAddsTallies) {
  Coverage a;
  Coverage b;
  a.record(Instr{Opcode::kXor});
  b.record(Instr{Opcode::kXor});
  b.record(Instr{Opcode::kHalt});
  b.record_mem(2, /*unaligned=*/true, /*straddle=*/false);
  b.record_hwloop_depth(2);
  a.merge(b);
  EXPECT_EQ(a.count(Opcode::kXor), 2u);
  EXPECT_EQ(a.count(Opcode::kHalt), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Coverage, ReportNamesOpcodesAndDimensions) {
  Coverage c;
  c.record(Instr{Opcode::kMac});
  c.record_mem(4, true, true);
  c.record_hwloop_depth(1);
  const std::string r = c.report();
  EXPECT_NE(r.find("mac"), std::string::npos);
  EXPECT_NE(r.find("unaligned"), std::string::npos);
  EXPECT_NE(r.find("hwloop"), std::string::npos);
}

// The headline guarantee behind `ulp_fuzz --coverage`: a seeded campaign
// of the default shape exercises every implemented opcode. Scaled down
// from 500+100 to keep the test fast; the profile striping and item
// weights are identical.
TEST(Coverage, SeededCampaignExercisesEveryOpcode) {
  CampaignParams p;
  p.num_programs = 120;
  p.num_stress = 25;
  const CampaignResult r = run_campaign(p);
  ASSERT_TRUE(r.pass()) << (r.failures.empty() ? "" : r.failures[0].detail);
  const auto missing = r.coverage.unexercised();
  for (Opcode op : missing) {
    ADD_FAILURE() << "opcode never executed: " << isa::op_info(op).mnemonic;
  }
  EXPECT_GT(r.coverage.total(), 10'000u);
}

}  // namespace
}  // namespace ulp::verif
