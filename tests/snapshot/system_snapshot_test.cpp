// Full-system snapshot tests: the complete co-simulated node — host core,
// host SRAM, byte-timed SPI wire (mid-frame included), fault-injector RNG,
// clock-ratio phase and every cluster — saved mid-offload and restored
// into a freshly constructed system, which must then finish the offload
// bit-identically to the continuous run. Plus the rejection contract:
// wrong geometry or a missing injector is a typed error with zero
// mutation.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "link/fault_injector.hpp"
#include "snapshot/snapshot.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace ulp::system {
namespace {

using kernels::Target;

kernels::KernelCase test_case(u64 seed = 77) {
  const auto accel_cfg = core::or10n_config();
  return kernels::make_matmul_char(accel_cfg.features, 4, Target::kCluster,
                                   seed);
}

/// Everything observable about a finished (or paused) system run.
struct Fingerprint {
  u64 host_cycles = 0;
  u64 cluster_cycles = 0;
  u64 wire_bytes = 0;
  u64 wire_busy_host_cycles = 0;
  u64 host_link_bound_cycles = 0;
  bool accel_started = false;
  u64 link_frames = 0;
  u64 link_crc_errors = 0;
  u64 fault_count = 0;
  std::vector<u64> cluster_cycles_each;
  std::array<u32, isa::kNumRegs> host_regs{};
  std::vector<u8> host_sram;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(HeteroSystem& sys) {
  const HeteroStats stats = sys.stats();
  Fingerprint f;
  f.host_cycles = stats.host_cycles;
  f.cluster_cycles = stats.cluster_cycles;
  f.wire_bytes = stats.wire_bytes;
  f.wire_busy_host_cycles = stats.wire_busy_host_cycles;
  f.host_link_bound_cycles = stats.host_link_bound_cycles;
  f.accel_started = stats.accel_started;
  f.link_frames = stats.link_frames;
  f.link_crc_errors = stats.link_crc_errors;
  f.fault_count = stats.fault_count;
  f.cluster_cycles_each = stats.cluster_cycles_each;
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    f.host_regs[r] = sys.host_core().reg(r);
  }
  const auto sram = sys.host_sram().bytes();
  f.host_sram.assign(sram.begin(), sram.end());
  return f;
}

Fingerprint continuous_run(const HeteroSystemParams& params,
                           const isa::Program& host_program) {
  HeteroSystem sys(params);
  sys.load_host_program(host_program);
  sys.run_to_host_halt();
  return fingerprint(sys);
}

/// Step `at` host cycles into the offload, snapshot, restore into a fresh
/// system, finish there, and return the stitched run's fingerprint.
Fingerprint stitched_run(const HeteroSystemParams& params,
                         const isa::Program& host_program, u64 at) {
  std::vector<u8> image;
  {
    HeteroSystem donor(params);
    donor.load_host_program(host_program);
    for (u64 i = 0; i < at; ++i) donor.step();
    snapshot::Writer w;
    EXPECT_TRUE(donor.save(w).ok());
    image = w.finish();
  }
  HeteroSystem resumed(params);
  snapshot::Reader r;
  EXPECT_TRUE(r.open(image).ok());
  const Status s = resumed.restore(r);
  EXPECT_TRUE(s.ok()) << s.message();
  // No load_host_program: the snapshot carries the driver and all state.
  resumed.run_to_host_halt();
  return fingerprint(resumed);
}

TEST(SystemSnapshot, MidOffloadRoundTripIsBitExact) {
  const auto kc = test_case();
  const FullSystemPackage pkg = package_offload(kc);
  const HeteroSystemParams params;
  const Fingerprint want = continuous_run(params, pkg.host_program);
  EXPECT_TRUE(want.accel_started);

  // Split points chosen to land in every offload phase: before anything
  // moved, mid image transfer (wire busy, SPI frame in flight), around
  // fetch-enable, and while the cluster crunches / host polls EOC.
  for (const u64 at : {u64{1}, u64{777}, static_cast<u64>(pkg.spec.image_len),
                       static_cast<u64>(pkg.spec.image_len) * 4 + 37,
                       want.host_cycles / 2}) {
    EXPECT_EQ(stitched_run(params, pkg.host_program, at), want)
        << "snapshot at host cycle " << at;
  }
}

TEST(SystemSnapshot, RobustOffloadWithFaultsRoundTrips) {
  // The injector's RNG, the CRC accumulators of a frame in flight and the
  // retry driver's progress all live in the snapshot: a mid-run split of
  // a faulty robust offload must replay the exact same fault schedule.
  const auto kc = test_case(5);
  const FullSystemPackage pkg = package_robust_offload(kc);
  HeteroSystemParams params;
  params.crc_frames = true;
  link::FaultConfig fcfg;
  ASSERT_TRUE(
      link::FaultInjector::parse("seed=9,flip=2e-4,nak=1e-3", &fcfg).ok());
  params.faults = fcfg;

  const Fingerprint want = continuous_run(params, pkg.host_program);
  EXPECT_GT(want.fault_count, 0u) << "fault schedule never fired; the "
                                     "round trip would prove nothing";
  for (const u64 at : {u64{900}, want.host_cycles / 2}) {
    EXPECT_EQ(stitched_run(params, pkg.host_program, at), want)
        << "snapshot at host cycle " << at;
  }
}

TEST(SystemSnapshot, MultiClusterRoundTrips) {
  std::vector<kernels::KernelCase> cases;
  cases.push_back(test_case(77));
  cases.push_back(test_case(78));
  const MultiSystemPackage mpkg = package_multi_offload(cases);
  HeteroSystemParams params;
  params.num_clusters = 2;

  const Fingerprint want = continuous_run(params, mpkg.host_program);
  EXPECT_TRUE(want.accel_started);
  EXPECT_EQ(stitched_run(params, mpkg.host_program, want.host_cycles / 2),
            want);
}

TEST(SystemSnapshot, ClusterCountMismatchIsRejectedWithoutMutation) {
  const auto kc = test_case();
  const FullSystemPackage pkg = package_offload(kc);
  std::vector<u8> image;
  {
    HeteroSystemParams params;
    HeteroSystem donor(params);
    donor.load_host_program(pkg.host_program);
    for (int i = 0; i < 500; ++i) donor.step();
    snapshot::Writer w;
    ASSERT_TRUE(donor.save(w).ok());
    image = w.finish();
  }

  HeteroSystemParams params;
  params.num_clusters = 2;
  HeteroSystem target(params);
  target.load_host_program(pkg.host_program);
  for (int i = 0; i < 100; ++i) target.step();
  const Fingerprint before = fingerprint(target);

  snapshot::Reader r;
  ASSERT_TRUE(r.open(image).ok());
  const Status s = target.restore(r);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("geometry"), std::string::npos) << s.message();
  EXPECT_EQ(fingerprint(target), before);
}

TEST(SystemSnapshot, InjectorPresenceMismatchIsRejectedWithoutMutation) {
  // A snapshot of a fault-injecting system cannot restore into a clean
  // one: the injector RNG state would have nowhere to go.
  const auto kc = test_case();
  const FullSystemPackage pkg = package_robust_offload(kc);
  std::vector<u8> image;
  {
    HeteroSystemParams params;
    params.crc_frames = true;
    link::FaultConfig fcfg;
    ASSERT_TRUE(link::FaultInjector::parse("seed=3,flip=1e-4", &fcfg).ok());
    params.faults = fcfg;
    HeteroSystem donor(params);
    donor.load_host_program(pkg.host_program);
    for (int i = 0; i < 400; ++i) donor.step();
    snapshot::Writer w;
    ASSERT_TRUE(donor.save(w).ok());
    image = w.finish();
  }

  HeteroSystemParams params;  // no injector
  HeteroSystem target(params);
  target.load_host_program(pkg.host_program);
  for (int i = 0; i < 100; ++i) target.step();
  const Fingerprint before = fingerprint(target);

  snapshot::Reader r;
  ASSERT_TRUE(r.open(image).ok());
  EXPECT_FALSE(target.restore(r).ok());
  EXPECT_EQ(fingerprint(target), before);
}

}  // namespace
}  // namespace ulp::system
