// Differential snapshot fuzzing self-tests.
//
// The snapshot column of verif::check_program replays every cluster-backed
// stepping mode through a mid-run save/restore into a fresh cluster and
// demands bit identity with the continuous run. These tests pin the two
// properties that make that oracle trustworthy: a seeded mini-campaign
// with the column on comes back clean, and a deliberately planted
// serialization bug (Core::restore dropping a hardware-loop count, the
// classic "forgot one field") is caught and attributed to the snapshot
// column — proving the fuzzer can actually see this class of bug.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "verif/differential.hpp"
#include "verif/generator.hpp"

namespace ulp::verif {
namespace {

TEST(SnapshotFuzz, MiniCampaignWithSnapshotColumnIsClean) {
  CampaignParams params;
  params.seed = 0x51AB;
  params.num_programs = 25;
  params.num_stress = 8;
  params.snapshot_every = 1;
  const CampaignResult result = run_campaign(params);
  EXPECT_EQ(result.failure_count, 0u)
      << (result.failures.empty() ? "" : result.failures[0].detail);
}

TEST(SnapshotFuzz, SnapshotEveryZeroDisablesTheColumn) {
  // With the column off, a planted restore bug is invisible to the
  // campaign — the control for the detection test below.
  config::set_inject_snapshot_bug(true);
  CampaignParams params;
  params.seed = 0x51AB;
  params.num_programs = 10;
  params.num_stress = 0;
  params.snapshot_every = 0;
  const CampaignResult result = run_campaign(params);
  config::set_inject_snapshot_bug(false);
  EXPECT_EQ(result.failure_count, 0u)
      << (result.failures.empty() ? "" : result.failures[0].detail);
}

TEST(SnapshotFuzz, PlantedUnserializedHwloopFieldIsCaught) {
  // The planted bug zeroes loops_[0].count on every Core restore; it only
  // shows when a snapshot lands inside an active hardware loop, so the
  // detector is a campaign, not a single program. It must (a) find at
  // least one divergence and (b) attribute every divergence to a snapshot
  // column ("-vs-snap"), since the continuous legs never restore.
  config::set_inject_snapshot_bug(true);
  CampaignParams params;
  params.seed = 0xB16B;
  params.num_programs = 60;
  params.num_stress = 0;
  params.snapshot_every = 1;
  const CampaignResult result = run_campaign(params);
  config::set_inject_snapshot_bug(false);

  EXPECT_GT(result.failure_count, 0u)
      << "the planted snapshot bug went undetected";
  for (const CampaignFailure& f : result.failures) {
    EXPECT_NE(f.detail.find("-vs-snap"), std::string::npos) << f.detail;
  }
}

TEST(SnapshotFuzz, SplitPointIsAPureFunctionOfTheSeed) {
  // Same program, same verdict, twice in a row: the snapshot column must
  // not introduce any run-to-run nondeterminism into check_program.
  GenParams gen;
  gen.seed = 0xD06F00D;
  const GenProgram gp = generate(gen);
  const DiffResult a = check_program(gp);
  const DiffResult b = check_program(gp);
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.detail, b.detail);
}

}  // namespace
}  // namespace ulp::verif
