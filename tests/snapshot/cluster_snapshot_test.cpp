// Cluster-level snapshot tests: mid-run save/restore bit-exactness on a
// real generated program, and the all-or-nothing restore contract — a
// snapshot that fails validation (wrong geometry, truncation, corruption)
// must leave the target cluster exactly as it was, able to keep running.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "cluster/cluster.hpp"
#include "snapshot/snapshot.hpp"
#include "verif/differential.hpp"
#include "verif/generator.hpp"

namespace ulp {
namespace {

verif::GenProgram test_program(u64 seed, u32 num_cores = 1) {
  verif::GenParams p;
  p.seed = seed;
  p.num_cores = num_cores;
  if (num_cores > 1) p.profile = "full";
  return verif::generate(p);
}

cluster::ClusterParams params_for(const verif::GenProgram& gp) {
  cluster::ClusterParams params;
  params.num_cores = gp.num_cores;
  params.core_config = gp.config;
  params.reference_stepping = true;
  return params;
}

/// Everything a failed restore must not touch, captured cheaply.
struct Fingerprint {
  u64 cycles = 0;
  std::vector<std::array<u32, isa::kNumRegs>> regs;
  std::vector<u8> tcdm;
  std::vector<u8> l2;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(cluster::Cluster& c, u32 num_cores) {
  Fingerprint f;
  f.cycles = c.cycles();
  f.regs.resize(num_cores);
  for (u32 i = 0; i < num_cores; ++i) {
    for (u32 r = 0; r < isa::kNumRegs; ++r) f.regs[i][r] = c.core(i).reg(r);
  }
  const auto tcdm = c.tcdm().bytes();
  f.tcdm.assign(tcdm.begin(), tcdm.end());
  const auto l2 = c.l2().bytes();
  f.l2.assign(l2.begin(), l2.end());
  return f;
}

std::vector<u8> snapshot_mid_run(const verif::GenProgram& gp, u64 cycles) {
  cluster::Cluster donor(params_for(gp));
  donor.load_program(gp.program);
  donor.advance(cycles);
  snapshot::Writer w;
  EXPECT_TRUE(donor.save(w).ok());
  return w.finish();
}

TEST(ClusterSnapshot, MidRunRoundTripIsBitExact) {
  const verif::GenProgram gp = test_program(0xC1A5);

  cluster::Cluster continuous(params_for(gp));
  continuous.load_program(gp.program);
  const u64 total = continuous.run(5'000'000);
  const Fingerprint want = fingerprint(continuous, gp.num_cores);

  const std::vector<u8> image = snapshot_mid_run(gp, total / 2);
  cluster::Cluster resumed(params_for(gp));
  snapshot::Reader r;
  ASSERT_TRUE(r.open(image).ok());
  ASSERT_TRUE(resumed.restore(r).ok());
  EXPECT_EQ(resumed.run(5'000'000), total);
  EXPECT_EQ(fingerprint(resumed, gp.num_cores), want);
}

TEST(ClusterSnapshot, RestoreIntoDirtyClusterOverwritesEverything) {
  // The target isn't fresh: it ran a different program for a while. The
  // restore must still land on the exact continuous-run trajectory.
  const verif::GenProgram gp = test_program(0xC1A5);
  const verif::GenProgram other = test_program(0x07E4);

  cluster::Cluster continuous(params_for(gp));
  continuous.load_program(gp.program);
  const u64 total = continuous.run(5'000'000);
  const Fingerprint want = fingerprint(continuous, gp.num_cores);

  const std::vector<u8> image = snapshot_mid_run(gp, total / 3);
  cluster::Cluster target(params_for(gp));
  target.load_program(other.program);
  target.advance(123);
  snapshot::Reader r;
  ASSERT_TRUE(r.open(image).ok());
  ASSERT_TRUE(target.restore(r).ok());
  EXPECT_EQ(target.run(5'000'000), total);
  EXPECT_EQ(fingerprint(target, gp.num_cores), want);
}

TEST(ClusterSnapshot, GeometryMismatchIsRejectedWithoutMutation) {
  const verif::GenProgram gp = test_program(0xBEEF, /*num_cores=*/2);
  const std::vector<u8> image = snapshot_mid_run(gp, 200);

  // Same program shape, different core count: the restore must refuse.
  cluster::ClusterParams params = params_for(gp);
  params.num_cores = 4;
  cluster::Cluster target(params);
  target.load_program(gp.program);
  target.advance(50);
  const Fingerprint before = fingerprint(target, params.num_cores);

  snapshot::Reader r;
  ASSERT_TRUE(r.open(image).ok());
  const Status s = target.restore(r);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("geometry"), std::string::npos) << s.message();
  EXPECT_EQ(fingerprint(target, params.num_cores), before);
}

TEST(ClusterSnapshot, CorruptionSweepNeverMutatesTheTarget) {
  const verif::GenProgram gp = test_program(0xF1B5);
  const std::vector<u8> image = snapshot_mid_run(gp, 150);

  cluster::Cluster target(params_for(gp));
  target.load_program(gp.program);
  target.advance(75);
  const Fingerprint before = fingerprint(target, gp.num_cores);

  // Flip one byte at a stride of offsets across the whole image (header
  // included) and at every truncation length across a stride: every
  // attempt must fail cleanly and leave the target untouched.
  for (size_t at = 0; at < image.size(); at += 37) {
    std::vector<u8> bad = image;
    bad[at] ^= 0x40;
    snapshot::Reader r;
    Status s = r.open(bad);
    if (s.ok()) s = target.restore(r);
    EXPECT_FALSE(s.ok()) << "byte flip at " << at;
    ASSERT_EQ(fingerprint(target, gp.num_cores), before)
        << "byte flip at " << at << " mutated the target";
  }
  for (size_t len = 0; len < image.size(); len += 101) {
    const std::vector<u8> cut(image.begin(),
                              image.begin() + static_cast<long>(len));
    snapshot::Reader r;
    Status s = r.open(cut);
    if (s.ok()) s = target.restore(r);
    EXPECT_FALSE(s.ok()) << "truncated to " << len;
    ASSERT_EQ(fingerprint(target, gp.num_cores), before)
        << "truncation to " << len << " mutated the target";
  }

  // And the untouched target still finishes exactly like a continuous run.
  cluster::Cluster continuous(params_for(gp));
  continuous.load_program(gp.program);
  const u64 total = continuous.run(5'000'000);
  EXPECT_EQ(target.run(5'000'000), total);
  EXPECT_EQ(fingerprint(target, gp.num_cores),
            fingerprint(continuous, gp.num_cores));
}

TEST(ClusterSnapshot, SaveAtBootAndAfterHaltBothRoundTrip) {
  const verif::GenProgram gp = test_program(0x0DDB);
  cluster::Cluster continuous(params_for(gp));
  continuous.load_program(gp.program);
  const u64 total = continuous.run(5'000'000);
  const Fingerprint want = fingerprint(continuous, gp.num_cores);

  for (const u64 at : {u64{0}, total}) {
    const std::vector<u8> image = snapshot_mid_run(gp, at);
    cluster::Cluster resumed(params_for(gp));
    snapshot::Reader r;
    ASSERT_TRUE(r.open(image).ok()) << "snapshot at cycle " << at;
    ASSERT_TRUE(resumed.restore(r).ok()) << "snapshot at cycle " << at;
    EXPECT_EQ(resumed.run(5'000'000), total) << "snapshot at cycle " << at;
    EXPECT_EQ(fingerprint(resumed, gp.num_cores), want)
        << "snapshot at cycle " << at;
  }
}

}  // namespace
}  // namespace ulp
