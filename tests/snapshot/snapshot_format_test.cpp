// Wire-format tests for the snapshot layer: header validation (magic,
// version, length, CRC), section indexing and forward-skip, the sticky
// failure latch, two-pass rewind, and the file I/O helpers. Every
// malformed input must come back as a typed Status — never UB, never a
// partial read that goes unnoticed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "snapshot/snapshot.hpp"

namespace ulp::snapshot {
namespace {

std::vector<u8> tiny_image() {
  Writer w;
  w.begin_section(0x10);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_bool(true);
  w.end_section();
  w.begin_section(0x11);
  const std::vector<u8> blob = {1, 2, 3, 4, 5};
  w.put_blob(blob);
  w.end_section();
  return w.finish();
}

TEST(SnapshotFormat, RoundTripsEveryPrimitive) {
  Writer w;
  w.begin_section(7);
  w.put_u8(0xAB);
  w.put_u32(0x12345678);
  w.put_u64(~0ull);
  w.put_i32(-42);
  w.put_bool(false);
  w.put_f64(3.25);
  const std::vector<u8> blob = {9, 8, 7};
  w.put_blob(blob);
  w.end_section();
  const std::vector<u8> image = w.finish();

  Reader r;
  ASSERT_TRUE(r.open(image).ok());
  ASSERT_TRUE(r.enter(7).ok());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0x12345678u);
  EXPECT_EQ(r.get_u64(), ~0ull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_blob(), blob);
  EXPECT_TRUE(r.status().ok());
}

TEST(SnapshotFormat, UnknownSectionsAreForwardSkippable) {
  const std::vector<u8> image = tiny_image();
  Reader r;
  ASSERT_TRUE(r.open(image).ok());
  // A reader that only understands 0x11 never has to look at 0x10.
  ASSERT_TRUE(r.enter(0x11).ok());
  EXPECT_EQ(r.get_blob().size(), 5u);
  EXPECT_TRUE(r.status().ok());
  EXPECT_TRUE(r.has_section(0x10));
  EXPECT_FALSE(r.has_section(0x77));
}

TEST(SnapshotFormat, ReenteringASectionRewindsIt) {
  const std::vector<u8> image = tiny_image();
  Reader r;
  ASSERT_TRUE(r.open(image).ok());
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(r.enter(0x10).ok()) << "pass " << pass;
    EXPECT_EQ(r.get_u32(), 0xDEADBEEFu) << "pass " << pass;
  }
}

TEST(SnapshotFormat, MissingSectionLatchesError) {
  const std::vector<u8> image = tiny_image();
  Reader r;
  ASSERT_TRUE(r.open(image).ok());
  EXPECT_FALSE(r.enter(0x55).ok());
  EXPECT_FALSE(r.status().ok());
}

TEST(SnapshotFormat, SectionUnderrunZeroFillsAndLatches) {
  const std::vector<u8> image = tiny_image();
  Reader r;
  ASSERT_TRUE(r.open(image).ok());
  ASSERT_TRUE(r.enter(0x10).ok());
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.get_bool());
  // Section exhausted: the next read underruns, zero-fills, and poisons
  // the stream for good.
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  ASSERT_FALSE(r.enter(0x11).ok()) << "sticky latch must survive enter()";
}

TEST(SnapshotFormat, BadMagicIsInvalidArgument) {
  std::vector<u8> image = tiny_image();
  image[0] ^= 0xFF;
  Reader r;
  const Status s = r.open(image);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotFormat, FutureVersionIsInvalidArgument) {
  std::vector<u8> image = tiny_image();
  image[4] = static_cast<u8>(kVersion + 1);
  Reader r;
  const Status s = r.open(image);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotFormat, EveryTruncationIsACleanError) {
  const std::vector<u8> image = tiny_image();
  for (size_t len = 0; len < image.size(); ++len) {
    const std::vector<u8> cut(image.begin(),
                              image.begin() + static_cast<long>(len));
    Reader r;
    const Status s = r.open(cut);
    EXPECT_FALSE(s.ok()) << "truncated to " << len << " bytes";
  }
}

TEST(SnapshotFormat, EveryPayloadByteFlipFailsTheCrc) {
  const std::vector<u8> image = tiny_image();
  const size_t header = 4 + 4 + 8 + 4;
  ASSERT_GT(image.size(), header);
  for (size_t at = header; at < image.size(); ++at) {
    std::vector<u8> bad = image;
    bad[at] ^= 0x01;
    Reader r;
    const Status s = r.open(bad);
    EXPECT_EQ(s.code(), StatusCode::kCrcError) << "flip at byte " << at;
  }
}

TEST(SnapshotFormat, CallerDetectedErrorsLatchViaFail) {
  const std::vector<u8> image = tiny_image();
  Reader r;
  ASSERT_TRUE(r.open(image).ok());
  r.fail(StatusCode::kInvalidArgument, "geometry mismatch");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // First error wins; later failures don't overwrite the message.
  r.fail(StatusCode::kIoError, "other");
  EXPECT_EQ(r.status().message(), "geometry mismatch");
}

TEST(SnapshotFormat, FileRoundTrip) {
  const std::vector<u8> image = tiny_image();
  const std::string path =
      testing::TempDir() + "/snapshot_format_roundtrip.ulps";
  ASSERT_TRUE(write_file(path, image).ok());
  std::vector<u8> back;
  ASSERT_TRUE(read_file(path, &back).ok());
  EXPECT_EQ(back, image);
  std::remove(path.c_str());

  std::vector<u8> missing;
  EXPECT_EQ(read_file(path + ".does-not-exist", &missing).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace ulp::snapshot
