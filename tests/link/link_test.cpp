#include "link/spi_link.hpp"

#include <gtest/gtest.h>

namespace ulp::link {
namespace {

TEST(SpiLink, ClockFollowsMcuUntilCap) {
  SpiLink l(SpiLinkConfig{.max_freq_hz = mhz(24)});
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(8)), mhz(4));
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(32)), mhz(16));
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(80)), mhz(24));  // capped
}

TEST(SpiLink, QuadModeQuadruplesBandwidth) {
  SpiLink single(SpiLinkConfig{.lanes = 1});
  SpiLink quad(SpiLinkConfig{.lanes = 4});
  EXPECT_DOUBLE_EQ(quad.bandwidth_bps(mhz(16)) / single.bandwidth_bps(mhz(16)),
                   4.0);
}

TEST(SpiLink, TransferTimeMatchesHandComputation) {
  // 1 KiB over single SPI at f_mcu=16 MHz -> f_spi=8 MHz, 1 bit/clock:
  // (8192 + 40 overhead) bits / 8e6 bps.
  SpiLink l(SpiLinkConfig{});
  EXPECT_NEAR(l.transfer_seconds(1024, mhz(16)), (8192.0 + 40.0) / 8e6,
              1e-12);
}

TEST(SpiLink, ZeroBytesIsFree) {
  SpiLink l(SpiLinkConfig{});
  EXPECT_DOUBLE_EQ(l.transfer_seconds(0, mhz(16)), 0.0);
  EXPECT_DOUBLE_EQ(l.transfer_energy_j(0), 0.0);
}

TEST(SpiLink, FrameOverheadHurtsSmallTransfersMore) {
  SpiLink l(SpiLinkConfig{});
  const double t4 = l.transfer_seconds(4, mhz(16));
  const double t4096 = l.transfer_seconds(4096, mhz(16));
  // Per-byte cost of a tiny transfer is much worse than a big one.
  EXPECT_GT(t4 / 4.0, 1.5 * t4096 / 4096.0);
}

TEST(SpiLink, DecoupledClockIgnoresMcuFrequency) {
  SpiLinkConfig cfg;
  cfg.decoupled_clock_hz = mhz(20);
  SpiLink l(cfg);
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(1)), mhz(20));
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(80)), mhz(20));
}

TEST(SpiLink, EnergyProportionalToBits) {
  SpiLink l(SpiLinkConfig{});
  const double e1 = l.transfer_energy_j(1000);
  const double e2 = l.transfer_energy_j(2000);
  EXPECT_GT(e2, e1 * 1.9);
  EXPECT_LT(e2, e1 * 2.1);
}

TEST(SpiLink, RejectsBadLaneCount) {
  SpiLinkConfig cfg;
  cfg.lanes = 3;
  EXPECT_THROW(SpiLink l(cfg), SimError);
}

}  // namespace
}  // namespace ulp::link
