#include "link/spi_link.hpp"

#include <gtest/gtest.h>

namespace ulp::link {
namespace {

TEST(SpiLink, ClockFollowsMcuUntilCap) {
  SpiLink l(SpiLinkConfig{.max_freq_hz = mhz(24)});
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(8)), mhz(4));
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(32)), mhz(16));
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(80)), mhz(24));  // capped
}

TEST(SpiLink, QuadModeQuadruplesBandwidth) {
  SpiLink single(SpiLinkConfig{.lanes = 1});
  SpiLink quad(SpiLinkConfig{.lanes = 4});
  EXPECT_DOUBLE_EQ(quad.bandwidth_bps(mhz(16)) / single.bandwidth_bps(mhz(16)),
                   4.0);
}

TEST(SpiLink, TransferTimeMatchesHandComputation) {
  // 1 KiB over single SPI at f_mcu=16 MHz -> f_spi=8 MHz, 1 bit/clock:
  // (8192 + 40 overhead) bits / 8e6 bps.
  SpiLink l(SpiLinkConfig{});
  EXPECT_NEAR(l.transfer_seconds(1024, mhz(16)), (8192.0 + 40.0) / 8e6,
              1e-12);
}

TEST(SpiLink, ZeroBytesIsFree) {
  SpiLink l(SpiLinkConfig{});
  EXPECT_DOUBLE_EQ(l.transfer_seconds(0, mhz(16)), 0.0);
  EXPECT_DOUBLE_EQ(l.transfer_energy_j(0), 0.0);
}

TEST(SpiLink, ZeroBytesStaysFreeWithCrcFraming) {
  // A zero-byte transfer is elided entirely: no command, no CRC trailer.
  // Time and energy must agree on that (they derive from one frame_bits).
  SpiLinkConfig cfg;
  cfg.crc_bits = 32;
  SpiLink l(cfg);
  EXPECT_DOUBLE_EQ(l.frame_bits(0), 0.0);
  EXPECT_DOUBLE_EQ(l.transfer_seconds(0, mhz(16)), 0.0);
  EXPECT_DOUBLE_EQ(l.transfer_energy_j(0), 0.0);
}

TEST(SpiLink, TimeAndEnergyShareOneFramingExpression) {
  // Regression: the two used to duplicate the framing arithmetic; any
  // drift (e.g. CRC bits billed in time but not energy) breaks the energy
  // model silently. Both must be exact functions of frame_bits().
  SpiLinkConfig cfg;
  cfg.crc_bits = 32;
  SpiLink l(cfg);
  for (const size_t bytes : {size_t{0}, size_t{1}, size_t{3}, size_t{64},
                             size_t{4096}}) {
    EXPECT_DOUBLE_EQ(l.transfer_seconds(bytes, mhz(16)),
                     l.frame_bits(bytes) / l.bandwidth_bps(mhz(16)));
    EXPECT_DOUBLE_EQ(l.transfer_energy_j(bytes),
                     l.frame_bits(bytes) * cfg.energy_per_bit);
  }
}

TEST(SpiLink, CrcTrailerCostsExactly32BitsPerTransfer) {
  SpiLink raw(SpiLinkConfig{});
  const SpiLink crc = raw.with_crc(32);
  EXPECT_NEAR(crc.transfer_seconds(1024, mhz(16)) -
                  raw.transfer_seconds(1024, mhz(16)),
              32.0 / raw.bandwidth_bps(mhz(16)), 1e-15);
  EXPECT_NEAR(crc.transfer_energy_j(1024) - raw.transfer_energy_j(1024),
              32.0 * raw.config().energy_per_bit, 1e-18);
}

TEST(SpiLink, AcceptedLaneSetIsPinned) {
  // {1, 2, 4}: classic, dual-IO and quad SPI. Everything else is not a
  // thing the MCU's controller can produce and must be rejected up front.
  for (const u32 lanes : {1u, 2u, 4u}) {
    SpiLinkConfig cfg;
    cfg.lanes = lanes;
    EXPECT_NO_THROW(SpiLink l(cfg)) << lanes << " lanes";
  }
  for (const u32 lanes : {0u, 3u, 5u, 8u}) {
    SpiLinkConfig cfg;
    cfg.lanes = lanes;
    EXPECT_THROW(SpiLink l(cfg), SimError) << lanes << " lanes";
  }
}

TEST(SpiLink, DualSpiDoublesBandwidthAndHalvesTransferTime) {
  SpiLinkConfig single_cfg, dual_cfg;
  dual_cfg.lanes = 2;
  SpiLink single(single_cfg), dual(dual_cfg);
  EXPECT_DOUBLE_EQ(
      dual.bandwidth_bps(mhz(16)) / single.bandwidth_bps(mhz(16)), 2.0);
  // Frame bits are lane-independent, so the whole transfer — preamble
  // included — scales exactly with the lane count.
  EXPECT_DOUBLE_EQ(single.transfer_seconds(1024, mhz(16)) /
                       dual.transfer_seconds(1024, mhz(16)),
                   2.0);
  // Energy is per wire bit, not per second: dual costs the same joules.
  EXPECT_DOUBLE_EQ(single.transfer_energy_j(1024),
                   dual.transfer_energy_j(1024));
}

TEST(SpiLink, FrameOverheadHurtsSmallTransfersMore) {
  SpiLink l(SpiLinkConfig{});
  const double t4 = l.transfer_seconds(4, mhz(16));
  const double t4096 = l.transfer_seconds(4096, mhz(16));
  // Per-byte cost of a tiny transfer is much worse than a big one.
  EXPECT_GT(t4 / 4.0, 1.5 * t4096 / 4096.0);
}

TEST(SpiLink, DecoupledClockIgnoresMcuFrequency) {
  SpiLinkConfig cfg;
  cfg.decoupled_clock_hz = mhz(20);
  SpiLink l(cfg);
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(1)), mhz(20));
  EXPECT_DOUBLE_EQ(l.clock_hz(mhz(80)), mhz(20));
}

TEST(SpiLink, EnergyProportionalToBits) {
  SpiLink l(SpiLinkConfig{});
  const double e1 = l.transfer_energy_j(1000);
  const double e2 = l.transfer_energy_j(2000);
  EXPECT_GT(e2, e1 * 1.9);
  EXPECT_LT(e2, e1 * 2.1);
}

TEST(SpiLink, RejectsBadLaneCount) {
  SpiLinkConfig cfg;
  cfg.lanes = 3;
  EXPECT_THROW(SpiLink l(cfg), SimError);
}

}  // namespace
}  // namespace ulp::link
