#include "link/spi_wire.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ulp::link {
namespace {

struct WireFixture {
  std::map<Addr, u8> remote;
  std::map<Addr, u8> local;
  SpiWire wire;

  explicit WireFixture(u32 lanes)
      : wire(lanes, [this](Addr a, u8 b) { remote[a] = b; },
             [this](Addr a) { return remote.count(a) ? remote[a] : 0; }) {}

  void start_tx(Addr local_a, Addr remote_a, u32 len) {
    wire.start(true, local_a, remote_a, len,
               [this](Addr a) { return local.count(a) ? local[a] : 0; },
               [this](Addr a, u8 b) { local[a] = b; });
  }
  void start_rx(Addr local_a, Addr remote_a, u32 len) {
    wire.start(false, local_a, remote_a, len,
               [this](Addr a) { return local.count(a) ? local[a] : 0; },
               [this](Addr a, u8 b) { local[a] = b; });
  }
  u64 run_to_idle() {
    u64 cycles = 0;
    while (wire.busy()) {
      wire.step();
      ++cycles;
      EXPECT_LT(cycles, 1u << 20);
    }
    return cycles;
  }
};

TEST(SpiWire, TxMovesBytesInOrder) {
  WireFixture f(4);
  for (u32 i = 0; i < 16; ++i) f.local[0x100 + i] = static_cast<u8>(i * 7);
  f.start_tx(0x100, 0x2000, 16);
  f.run_to_idle();
  for (u32 i = 0; i < 16; ++i) {
    EXPECT_EQ(f.remote[0x2000 + i], static_cast<u8>(i * 7));
  }
  EXPECT_EQ(f.wire.bytes_moved(), 16u);
}

TEST(SpiWire, RxPullsFromRemote) {
  WireFixture f(1);
  for (u32 i = 0; i < 8; ++i) f.remote[0x300 + i] = static_cast<u8>(0xA0 + i);
  f.start_rx(0x10, 0x300, 8);
  f.run_to_idle();
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(f.local[0x10 + i], static_cast<u8>(0xA0 + i));
  }
}

TEST(SpiWire, TimingMatchesLaneCount) {
  // Payload cycles: len * 16/lanes host cycles, plus the fixed preamble.
  for (u32 lanes : {1u, 2u, 4u}) {
    WireFixture f(lanes);
    f.start_tx(0, 0x100, 64);
    const u64 cycles = f.run_to_idle();
    const u64 expected = 2u * 40 / lanes + 64u * (16 / lanes);
    EXPECT_EQ(cycles, expected) << lanes << " lanes";
  }
}

TEST(SpiWire, QuadIsFourTimesFaster) {
  WireFixture f1(1), f4(4);
  f1.start_tx(0, 0x100, 1024);
  f4.start_tx(0, 0x100, 1024);
  const u64 c1 = f1.run_to_idle();
  const u64 c4 = f4.run_to_idle();
  EXPECT_NEAR(static_cast<double>(c1) / static_cast<double>(c4), 4.0, 0.05);
}

TEST(SpiWire, RejectsOverlappingTransfers) {
  WireFixture f(4);
  f.start_tx(0, 0x100, 8);
  EXPECT_THROW(f.start_tx(0, 0x200, 8), SimError);
}

TEST(SpiWire, ZeroLengthIsNoOp) {
  WireFixture f(4);
  f.start_tx(0, 0x100, 0);
  EXPECT_FALSE(f.wire.busy());
}

TEST(SpiWire, StepWhileIdleIsHarmless) {
  WireFixture f(4);
  for (int i = 0; i < 10; ++i) f.wire.step();
  EXPECT_EQ(f.wire.busy_cycles(), 0u);
}

}  // namespace
}  // namespace ulp::link
