// Robustness-layer unit tests: CRC-32, the deterministic fault injector,
// and the CRC-framed SpiWire. Part of the `robust` CTest label.
#include <array>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "link/crc32.hpp"
#include "link/fault_injector.hpp"
#include "link/spi_wire.hpp"

namespace ulp::link {
namespace {

// ---------------------------------------------------------------------------
// Crc32

TEST(Crc32, MatchesKnownVector) {
  // The classic IEEE 802.3 check value: CRC-32 of "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const u8*>(s), 9}), 0xCBF43926u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  std::vector<u8> data(257);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 37);
  Crc32 inc;
  for (const u8 b : data) inc.update(b);
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<u8> data(64, 0xA5);
  const u32 clean = crc32(data);
  for (int bit = 0; bit < 8; ++bit) {
    auto copy = data;
    copy[17] ^= static_cast<u8>(1u << bit);
    EXPECT_NE(crc32(copy), clean) << "bit " << bit;
  }
}

TEST(Crc32, ResetStartsFresh) {
  Crc32 c;
  c.update(0xFF);
  c.reset();
  const u8 byte = 0x42;
  c.update(byte);
  EXPECT_EQ(c.value(), crc32({&byte, 1}));
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultConfig flip_cfg(double rate, u64 seed = 7) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.tx_flip_rate = rate;
  cfg.rx_flip_rate = rate;
  return cfg;
}

TEST(FaultInjector, ZeroRatesInjectNothing) {
  FaultInjector inj(FaultConfig{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inj.beat(Direction::kTx), BeatFault::kNone);
    EXPECT_EQ(inj.beat(Direction::kRx), BeatFault::kNone);
  }
  EXPECT_FALSE(inj.frame_nak(Direction::kTx));
  inj.begin_eoc_wait();
  EXPECT_FALSE(inj.eoc_wait_stuck());
  EXPECT_TRUE(inj.eoc_gate(true));
  EXPECT_EQ(inj.counters().total_faults(), 0u);
  EXPECT_EQ(inj.counters().beats, 2000u);
}

TEST(FaultInjector, RateOneFlipsEveryBeat) {
  FaultInjector inj(flip_cfg(1.0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.beat(Direction::kTx), BeatFault::kFlip);
  }
  EXPECT_EQ(inj.counters().flips, 100u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultInjector a(flip_cfg(0.05, 42));
  FaultInjector b(flip_cfg(0.05, 42));
  for (int i = 0; i < 5000; ++i) {
    const Direction d = (i % 3 == 0) ? Direction::kRx : Direction::kTx;
    const BeatFault fa = a.beat(d);
    const BeatFault fb = b.beat(d);
    ASSERT_EQ(fa, fb) << "beat " << i;
    if (fa == BeatFault::kFlip) ASSERT_EQ(a.flip_mask(), b.flip_mask());
  }
  EXPECT_EQ(a.counters().flips, b.counters().flips);
  EXPECT_GT(a.counters().flips, 0u);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(flip_cfg(0.05, 1));
  FaultInjector b(flip_cfg(0.05, 2));
  int differing = 0;
  for (int i = 0; i < 5000; ++i) {
    if (a.beat(Direction::kTx) != b.beat(Direction::kTx)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, FlipMaskIsSingleBit) {
  FaultInjector inj(flip_cfg(1.0));
  for (int i = 0; i < 256; ++i) {
    const u8 mask = inj.flip_mask();
    EXPECT_NE(mask, 0);
    EXPECT_EQ(mask & (mask - 1), 0) << "more than one bit set";
  }
}

TEST(FaultInjector, BurstStretchesFaults) {
  FaultConfig cfg = flip_cfg(0.01, 3);
  cfg.burst_len = 4;
  FaultInjector inj(cfg);
  // Once a fault fires, the following burst_len - 1 beats must carry the
  // same fault kind.
  int checked_bursts = 0;
  for (int i = 0; i < 20000 && checked_bursts < 5; ++i) {
    if (inj.beat(Direction::kTx) == BeatFault::kFlip) {
      for (int j = 1; j < 4; ++j) {
        ASSERT_EQ(inj.beat(Direction::kTx), BeatFault::kFlip)
            << "burst beat " << j;
      }
      ++checked_bursts;
    }
  }
  EXPECT_EQ(checked_bursts, 5);
}

TEST(FaultInjector, StuckEocBudgetMasksFirstWaits) {
  FaultConfig cfg;
  cfg.stuck_eoc_waits = 2;
  FaultInjector inj(cfg);

  inj.begin_eoc_wait();  // wait 0: stuck
  EXPECT_TRUE(inj.eoc_wait_stuck());
  EXPECT_FALSE(inj.eoc_gate(true)) << "line must read low while stuck";
  EXPECT_FALSE(inj.eoc_gate(false));

  inj.begin_eoc_wait();  // wait 1: stuck
  EXPECT_TRUE(inj.eoc_wait_stuck());

  inj.begin_eoc_wait();  // wait 2: budget exhausted, line works again
  EXPECT_FALSE(inj.eoc_wait_stuck());
  EXPECT_TRUE(inj.eoc_gate(true));
  EXPECT_FALSE(inj.eoc_gate(false));
  EXPECT_EQ(inj.counters().stuck_waits, 2u);
}

TEST(FaultInjector, FrameIntactCleanInjectorAlwaysPasses) {
  FaultInjector inj(FaultConfig{});
  std::vector<u8> payload(512, 0x5A);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(inj.frame_intact(Direction::kTx, payload));
  }
}

TEST(FaultInjector, FrameIntactDetectsInjectedFaults) {
  // With a per-beat flip rate high enough, some frames must fail; and the
  // pass/fail sequence is a pure function of the seed.
  std::vector<u8> payload(256, 0x11);
  auto run = [&](u64 seed) {
    FaultInjector inj(flip_cfg(0.01, seed));
    std::vector<bool> outcomes;
    for (int i = 0; i < 50; ++i) {
      outcomes.push_back(inj.frame_intact(Direction::kRx, payload));
    }
    return outcomes;
  };
  const auto a = run(9);
  const auto b = run(9);
  EXPECT_EQ(a, b);
  size_t failures = 0;
  for (const bool ok : a) failures += ok ? 0 : 1;
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, a.size()) << "some frames should still pass";
}

TEST(FaultInjector, NakRejectsWholeFrames) {
  FaultConfig cfg;
  cfg.nak_rate = 1.0;
  FaultInjector inj(cfg);
  std::vector<u8> payload(16, 0);
  EXPECT_FALSE(inj.frame_intact(Direction::kTx, payload));
  EXPECT_GT(inj.counters().naks, 0u);
}

// ---------------------------------------------------------------------------
// FaultInjector::parse

TEST(FaultInjectorParse, RoundTripsFullSpec) {
  FaultConfig cfg;
  const Status s = FaultInjector::parse(
      "seed=7,flip=1e-4,drop=2e-5,dup=3e-5,nak=0.01,burst=4,stuck=2", &cfg);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.tx_flip_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.rx_flip_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.tx_drop_rate, 2e-5);
  EXPECT_DOUBLE_EQ(cfg.rx_drop_rate, 2e-5);
  EXPECT_DOUBLE_EQ(cfg.tx_dup_rate, 3e-5);
  EXPECT_DOUBLE_EQ(cfg.rx_dup_rate, 3e-5);
  EXPECT_DOUBLE_EQ(cfg.nak_rate, 0.01);
  EXPECT_EQ(cfg.burst_len, 4u);
  EXPECT_EQ(cfg.stuck_eoc_waits, 2u);
}

TEST(FaultInjectorParse, RejectsGarbage) {
  FaultConfig cfg;
  EXPECT_EQ(FaultInjector::parse("flip=", &cfg).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::parse("flip=abc", &cfg).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::parse("bogus=1", &cfg).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::parse("flip", &cfg).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// SpiWire with CRC framing

struct WireHarness {
  std::array<u8, 4096> remote{};
  std::array<u8, 4096> local{};
  SpiWire wire;

  explicit WireHarness(u32 lanes = 1)
      : wire(lanes,
             [this](Addr a, u8 v) { remote[a % remote.size()] = v; },
             [this](Addr a) { return remote[a % remote.size()]; }) {}

  // Transfer `len` bytes host -> remote starting at local/remote offset 0,
  // stepping the wire to completion. Returns host cycles consumed.
  u64 send(u32 len) {
    wire.start(true, 0, 0, len,
               [this](Addr a) { return local[a % local.size()]; },
               [this](Addr a, u8 v) { local[a % local.size()] = v; });
    u64 cycles = 0;
    while (wire.busy()) {
      wire.step();
      ++cycles;
      ULP_CHECK(cycles < 1'000'000, "wire never finished");
    }
    return cycles;
  }
};

TEST(SpiWireCrc, TrailerCostsCyclesButNotBytes) {
  WireHarness raw, crc;
  crc.wire.set_crc_frames(true);
  const u64 raw_cycles = raw.send(64);
  const u64 crc_cycles = crc.send(64);
  // 4 trailer beats at cycles_per_byte host cycles each.
  EXPECT_EQ(crc_cycles, raw_cycles + 4 * crc.wire.cycles_per_byte());
  // bytes_moved counts payload only — the trailer is consumed by the CRC
  // units, so the pinned wire-traffic accounting is unchanged.
  EXPECT_EQ(raw.wire.bytes_moved(), 64u);
  EXPECT_EQ(crc.wire.bytes_moved(), 64u);
  EXPECT_TRUE(crc.wire.last_frame_ok());
  EXPECT_EQ(crc.wire.frames(), 1u);
  EXPECT_EQ(crc.wire.crc_errors(), 0u);
}

TEST(SpiWireCrc, CleanWireAlwaysVerifies) {
  WireHarness h;
  h.wire.set_crc_frames(true);
  for (size_t i = 0; i < h.local.size(); ++i) {
    h.local[i] = static_cast<u8>(i * 13 + 5);
  }
  h.send(1024);
  EXPECT_TRUE(h.wire.last_frame_ok());
  EXPECT_TRUE(std::memcmp(h.local.data(), h.remote.data(), 1024) == 0);
}

TEST(SpiWireCrc, InjectedFlipFailsTheFrame) {
  WireHarness h;
  h.wire.set_crc_frames(true);
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.tx_flip_rate = 1.0;  // every beat flips: guaranteed corruption
  FaultInjector inj(cfg);
  h.wire.set_fault_injector(&inj);
  h.send(64);
  EXPECT_FALSE(h.wire.last_frame_ok());
  EXPECT_EQ(h.wire.crc_errors(), 1u);
  EXPECT_GT(inj.counters().flips, 0u);
}

TEST(SpiWireCrc, RetryWithFaultsEventuallyDeliversCleanFrame) {
  // Moderate flip rate: some attempts fail, a retry eventually passes, and
  // the verified frame's payload is byte-exact (a flip can't slip through
  // a passing CRC check short of a 2^-32 collision).
  WireHarness h;
  h.wire.set_crc_frames(true);
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.tx_flip_rate = 0.01;
  FaultInjector inj(cfg);
  h.wire.set_fault_injector(&inj);
  for (size_t i = 0; i < h.local.size(); ++i) {
    h.local[i] = static_cast<u8>(i ^ 0x3C);
  }
  int attempts = 0;
  do {
    h.send(256);
    ++attempts;
    ASSERT_LT(attempts, 100) << "never delivered a clean frame";
  } while (!h.wire.last_frame_ok());
  EXPECT_TRUE(std::memcmp(h.local.data(), h.remote.data(), 256) == 0);
  EXPECT_EQ(h.wire.crc_errors(), static_cast<u64>(attempts - 1));
}

TEST(SpiWireCrc, DroppedBeatIsStructuralDamage) {
  WireHarness h;
  h.wire.set_crc_frames(true);
  FaultConfig cfg;
  cfg.seed = 2;
  cfg.tx_drop_rate = 1.0;
  FaultInjector inj(cfg);
  h.wire.set_fault_injector(&inj);
  h.send(16);
  EXPECT_FALSE(h.wire.last_frame_ok());
  EXPECT_GT(inj.counters().drops, 0u);
}

TEST(SpiWireCrc, RawWireStaysOblivious) {
  // CRC off: faults corrupt silently, last_frame_ok stays true and no
  // trailer cycles are spent — the legacy wire contract.
  WireHarness h;
  FaultConfig cfg;
  cfg.seed = 4;
  cfg.tx_flip_rate = 1.0;
  FaultInjector inj(cfg);
  h.wire.set_fault_injector(&inj);
  h.local[0] = 0xAA;
  h.send(16);
  EXPECT_TRUE(h.wire.last_frame_ok());
  EXPECT_EQ(h.wire.crc_errors(), 0u);
  EXPECT_NE(h.remote[0], h.local[0]) << "flip should corrupt silently";
}

}  // namespace
}  // namespace ulp::link
