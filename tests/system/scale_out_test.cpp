// Scale-out regression suite.
//
// Two contracts pinned here:
//
//  1. The {clusters: 1} degenerate path of the multi-cluster HeteroSystem
//     reproduces the pre-refactor single-cluster simulator bit-exactly —
//     host cycles, cluster cycles, wire/link counters, output bytes,
//     profile JSON, chrome-trace and metrics exports — in all three
//     stepping modes (reference, fast-forward, block-cached). The golden
//     constants below were recorded from the last single-cluster build
//     (commit d000a39) by an out-of-tree recorder; they are the oracle.
//
//  2. Multi-cluster dispatch is correct (every cluster's output matches
//     its shard's expectation) and deterministic: identical configs give
//     identical cycle counts and outputs across repeat runs, across the
//     two fast-forward flavours, and under fault injection.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "link/fault_injector.hpp"
#include "host/mcu.hpp"
#include "kernels/kernel.hpp"
#include "profile/profile.hpp"
#include "profile/report.hpp"
#include "runtime/offload.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"
#include "trace/trace_export.hpp"

namespace ulp::system {
namespace {

using kernels::Target;

u64 fnv1a(const u8* data, size_t n) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

u64 fnv1a(const std::vector<u8>& v) { return fnv1a(v.data(), v.size()); }

u64 fnv1a(const std::string& s) {
  return fnv1a(reinterpret_cast<const u8*>(s.data()), s.size());
}

const kernels::KernelInfo& kernel_info(const std::string& name) {
  for (const auto& k : kernels::all_kernels()) {
    if (k.name == name) return k;
  }
  ADD_FAILURE() << "unknown kernel " << name;
  std::abort();
}

kernels::KernelCase make_case(const std::string& kernel, u64 seed) {
  const auto cfg = core::or10n_config();
  return kernel_info(kernel).factory(cfg.features, 4, Target::kCluster, seed);
}

// Stepping modes under test: 0 = reference per-cycle, 1 = fast-forward,
// 2 = block-cached fast-forward. All three must agree bit-for-bit.
HeteroSystemParams mode_params(int mode) {
  HeteroSystemParams params;
  params.mcu_freq_hz = mhz(48);
  params.pulp_freq_hz = mhz(16);
  params.cluster_params.reference_stepping = mode == 0;
  params.cluster_params.block_cache = mode == 2;
  return params;
}

// ---------------------------------------------------------------------------
// 1. N=1 degenerate bit-exactness vs the pre-refactor oracle.
// ---------------------------------------------------------------------------

struct CosimGolden {
  const char* kernel;
  u64 host_cycles, cluster_cycles, wire_bytes;
  u64 wire_busy_host_cycles, host_link_bound_cycles;
  u64 output_hash, profile_hash;
};

// Recorded at seed 77, 4 cores, MCU 48 MHz / PULP 16 MHz; identical in all
// three stepping modes pre-refactor, so one row covers the mode sweep.
constexpr CosimGolden kCosimGolden[] = {
    {"matmul", 272756, 74172, 12528, 50172, 50169, 0x68ea7be9b2499eaaull,
     0x547eee75a13b588aull},
    {"cnn", 849562, 259718, 17572, 70348, 70345, 0x41871d65dfaa00c8ull,
     0x01600854f970bbd2ull},
};

TEST(ScaleOutDegenerate, CosimBitExactVsPreRefactorOracle) {
  for (const CosimGolden& g : kCosimGolden) {
    const auto kc = make_case(g.kernel, 77);
    const FullSystemPackage pkg = package_offload(kc);
    for (int mode = 0; mode < 3; ++mode) {
      SCOPED_TRACE(std::string(g.kernel) + " mode " + std::to_string(mode));
      HeteroSystem sys(mode_params(mode));
      profile::ClusterProfiler prof;
      prof.attach(sys.soc().cluster());
      const SystemOffloadResult res = run_offload_with_fallback(sys, pkg);
      prof.capture();

      ASSERT_TRUE(res.status.ok()) << res.status.message();
      EXPECT_FALSE(res.used_host_fallback);
      EXPECT_EQ(res.host_cycles, g.host_cycles);
      EXPECT_EQ(res.stats.cluster_cycles, g.cluster_cycles);
      EXPECT_EQ(res.stats.wire_bytes, g.wire_bytes);
      EXPECT_EQ(res.stats.wire_busy_host_cycles, g.wire_busy_host_cycles);
      EXPECT_EQ(res.stats.host_link_bound_cycles, g.host_link_bound_cycles);
      EXPECT_EQ(fnv1a(res.output), g.output_hash);
      EXPECT_EQ(fnv1a(profile::to_json(prof.data())), g.profile_hash);
    }
  }
}

struct AnalyticGolden {
  const char* kernel;
  u64 accel_cycles;
  double t_binary_s, t_in_s, t_out_s, t_compute_s;
  double mcu_j, pulp_j, link_j, steady_power_w;
  u64 output_hash;
};

// Recorded at seed 77, 4 cores, stm32l476 @ 16 MHz, VDD 0.5; doubles are
// exact (17 significant digits round-trips IEEE binary64) and compared
// with ==: the analytic path must not change even in the last ulp.
constexpr AnalyticGolden kAnalyticGolden[] = {
    {"matmul", 74172, 0.00210925, 0.0020492499999999999,
     0.0010252499999999999, 0.0046357500000000001, 0.00015772095569999999,
     7.0339185220000001e-05, 2.643802375e-05, 0.0031823242075159691,
     0x68ea7be9b2499eaaull},
    {"cnn", 259718, 0.0059202500000000002, 0.00051325000000000003,
     1.1250000000000001e-05, 0.016232375, 5.3766563574999995e-05,
     0.00023508915340800005, 9.4385055000000012e-06, 0.0015815700202752602,
     0x41871d65dfaa00c8ull},
};

TEST(ScaleOutDegenerate, AnalyticBitExactVsPreRefactorOracle) {
  for (const AnalyticGolden& g : kAnalyticGolden) {
    const auto kc = make_case(g.kernel, 77);
    const host::McuSpec& mcu = host::stm32l476();
    for (const bool ref : {true, false}) {
      SCOPED_TRACE(std::string(g.kernel) + (ref ? " ref" : " ff"));
      link::SpiLinkConfig lcfg;
      lcfg.lanes = mcu.spi_lanes;
      lcfg.max_freq_hz = mcu.spi_max_hz;
      runtime::OffloadSession session(mcu, mhz(16), link::SpiLink(lcfg));
      session.set_reference_stepping(ref);
      power::PulpPowerModel pm;
      const power::OperatingPoint op{0.5, pm.fmax_hz(0.5)};
      const auto out = session.run(kc.offload_request(), op, 4);
      const auto e = session.energy(out, op, 10, true);

      EXPECT_EQ(out.timing.accel_cycles, g.accel_cycles);
      EXPECT_EQ(out.timing.t_binary_s, g.t_binary_s);
      EXPECT_EQ(out.timing.t_in_s, g.t_in_s);
      EXPECT_EQ(out.timing.t_out_s, g.t_out_s);
      EXPECT_EQ(out.timing.t_compute_s, g.t_compute_s);
      EXPECT_EQ(e.mcu_j, g.mcu_j);
      EXPECT_EQ(e.pulp_j, g.pulp_j);
      EXPECT_EQ(e.link_j, g.link_j);
      EXPECT_EQ(session.steady_power_w(out, op, false), g.steady_power_w);
      EXPECT_EQ(fnv1a(out.output), g.output_hash);
    }
  }
}

TEST(ScaleOutDegenerate, TraceAndMetricsExportsBitExact) {
  // matmul seed 77 through all three modes: the serialized chrome trace
  // and metrics JSON hash to the pre-refactor values (trace span names,
  // ordering and timestamps all unchanged for one cluster).
  constexpr u64 kTraceHash = 0x165d5ac6187a50d1ull;
  constexpr u64 kMetricsHash = 0x52f788b23958a11c;
  const auto kc = make_case("matmul", 77);
  const FullSystemPackage pkg = package_offload(kc);
  for (int mode = 0; mode < 3; ++mode) {
    SCOPED_TRACE("mode " + std::to_string(mode));
    HeteroSystem sys(mode_params(mode));
    trace::EventTrace tr;
    trace::MetricsRegistry metrics;
    sys.attach_trace({&tr, &metrics});
    (void)run_offload_with_fallback(sys, pkg);
    std::ostringstream os;
    ASSERT_TRUE(trace::write_chrome_trace(tr, os).ok());
    std::ostringstream ms;
    ms << trace::metrics_to_json(metrics);
    EXPECT_EQ(fnv1a(os.str()), kTraceHash);
    EXPECT_EQ(fnv1a(ms.str()), kMetricsHash);
  }
}

TEST(ScaleOutDegenerate, SingleClusterAccessorsKeepLegacyShape) {
  HeteroSystem sys;
  EXPECT_EQ(sys.num_clusters(), 1u);
  EXPECT_EQ(&sys.soc(), &sys.soc(0));
  // The wake mask resets to 1: a driver that never touches the new
  // register observes exactly the legacy single-EOC wake behaviour.
  EXPECT_EQ(sys.wake_mask(), 1u);
  const HeteroStats stats = sys.stats();
  ASSERT_EQ(stats.cluster_cycles_each.size(), 1u);
  ASSERT_EQ(stats.cluster_started_each.size(), 1u);
}

// ---------------------------------------------------------------------------
// 2. Multi-cluster correctness, determinism and diagnostics.
// ---------------------------------------------------------------------------

struct MultiRun {
  std::vector<std::vector<u8>> outputs;
  u64 host_cycles = 0;
  HeteroStats stats;
  bool threw = false;
  std::string error;
};

MultiRun run_two_clusters(bool block_cache,
                          const std::optional<link::FaultConfig>& faults) {
  MultiRun out;
  HeteroSystemParams params;
  params.mcu_freq_hz = mhz(48);
  params.pulp_freq_hz = mhz(16);
  params.num_clusters = 2;
  params.cluster_params.block_cache = block_cache;
  params.faults = faults;
  HeteroSystem sys(params);
  std::vector<kernels::KernelCase> cases = {make_case("matmul", 77),
                                            make_case("cnn", 123)};
  const MultiSystemPackage pkg = package_multi_offload(cases);
  try {
    MultiOffloadResult res = run_multi_offload(sys, pkg);
    out.outputs = std::move(res.outputs);
    out.host_cycles = res.host_cycles;
    out.stats = res.stats;
  } catch (const SimError& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

TEST(ScaleOutMulti, TwoClusterDispatchIsCorrect) {
  // Golden values recorded from the first working 2-cluster build; they
  // pin host-cycle determinism across future changes, while the output
  // checks pin correctness against each shard's independent expectation.
  const std::vector<kernels::KernelCase> cases = {make_case("matmul", 77),
                                                  make_case("cnn", 123)};
  const MultiRun r = run_two_clusters(/*block_cache=*/false, std::nullopt);
  ASSERT_FALSE(r.threw) << r.error;
  ASSERT_EQ(r.outputs.size(), 2u);
  EXPECT_EQ(r.outputs[0], cases[0].expected);
  EXPECT_EQ(r.outputs[1], cases[1].expected);
  EXPECT_EQ(r.host_cycles, 899445u);
  ASSERT_EQ(r.stats.cluster_cycles_each.size(), 2u);
  EXPECT_EQ(r.stats.cluster_cycles_each[0], 74172u);
  EXPECT_EQ(r.stats.cluster_cycles_each[1], 259602u);
  EXPECT_TRUE(r.stats.cluster_started_each[0]);
  EXPECT_TRUE(r.stats.cluster_started_each[1]);
  // The aggregate view stays the sum of the per-cluster rows.
  EXPECT_EQ(r.stats.cluster_cycles,
            r.stats.cluster_cycles_each[0] + r.stats.cluster_cycles_each[1]);
}

TEST(ScaleOutMulti, DeterministicAcrossRunsAndBlockModes) {
  const MultiRun a = run_two_clusters(false, std::nullopt);
  const MultiRun b = run_two_clusters(false, std::nullopt);
  const MultiRun c = run_two_clusters(true, std::nullopt);
  ASSERT_FALSE(a.threw) << a.error;
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.host_cycles, b.host_cycles);
  EXPECT_EQ(a.outputs, c.outputs);
  EXPECT_EQ(a.host_cycles, c.host_cycles);
  EXPECT_EQ(a.stats.cluster_cycles_each, c.stats.cluster_cycles_each);
  EXPECT_EQ(a.stats.wire_bytes, c.stats.wire_bytes);
}

TEST(ScaleOutMulti, DeterministicUnderFaultInjection) {
  // The multi-cluster driver ships raw (un-CRC'd) frames, so injected
  // flips corrupt payloads — possibly including the shipped binary, which
  // may legally end in a SimError. Whatever the outcome, it must be the
  // SAME outcome on every run and in both fast-forward flavours: same
  // outputs, cycles and fault count, or the same error text.
  link::FaultConfig fcfg;
  fcfg.seed = 7;
  fcfg.tx_flip_rate = 1e-4;
  const MultiRun a = run_two_clusters(false, fcfg);
  const MultiRun b = run_two_clusters(false, fcfg);
  const MultiRun c = run_two_clusters(true, fcfg);
  EXPECT_EQ(a.threw, b.threw);
  EXPECT_EQ(a.threw, c.threw);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.error, c.error);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.outputs, c.outputs);
  EXPECT_EQ(a.host_cycles, b.host_cycles);
  EXPECT_EQ(a.host_cycles, c.host_cycles);
  EXPECT_EQ(a.stats.fault_count, b.stats.fault_count);
  EXPECT_EQ(a.stats.fault_count, c.stats.fault_count);
  if (!a.threw) {
    // Faults actually fired on this seed (else the test is vacuous).
    EXPECT_GT(a.stats.fault_count, 0u);
  }
}

TEST(ScaleOutMulti, PerClusterClockRatiosStillCompute) {
  // Heterogeneous cluster clocks: cluster 1 at half speed. Outputs stay
  // correct; each cluster's cycle count is in its own clock domain so the
  // slow cluster burns the same cluster cycles, just more host time.
  HeteroSystemParams params;
  params.mcu_freq_hz = mhz(48);
  params.pulp_freq_hz = mhz(16);
  params.num_clusters = 2;
  params.cluster_freq_hz = {mhz(16), mhz(8)};
  HeteroSystem sys(params);
  std::vector<kernels::KernelCase> cases = {make_case("matmul", 77),
                                            make_case("cnn", 123)};
  const MultiSystemPackage pkg = package_multi_offload(cases);
  const MultiOffloadResult res = run_multi_offload(sys, pkg);
  EXPECT_EQ(res.outputs[0], cases[0].expected);
  EXPECT_EQ(res.outputs[1], cases[1].expected);
  const MultiRun same_speed = run_two_clusters(false, std::nullopt);
  EXPECT_EQ(res.stats.cluster_cycles_each[1],
            same_speed.stats.cluster_cycles_each[1]);
  EXPECT_GT(res.host_cycles, same_speed.host_cycles);
}

TEST(ScaleOutMulti, StuckReportNamesEachCluster) {
  // Exhausting the host-cycle budget mid-offload must raise a SimError
  // whose diagnostics identify the host state and every cluster by index
  // — the N>1 replacement for the old anonymous single-cluster report.
  HeteroSystemParams params;
  params.num_clusters = 2;
  HeteroSystem sys(params);
  std::vector<kernels::KernelCase> cases = {make_case("matmul", 77),
                                            make_case("cnn", 123)};
  const MultiSystemPackage pkg = package_multi_offload(cases);
  try {
    sys.load_host_program(pkg.host_program);
    sys.run_to_host_halt(/*max_host_cycles=*/500);
    FAIL() << "expected budget-exceeded SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exceeded host cycle budget"), std::string::npos)
        << what;
    EXPECT_NE(what.find("cluster 0"), std::string::npos) << what;
    EXPECT_NE(what.find("cluster 1"), std::string::npos) << what;
    EXPECT_NE(what.find("wake mask"), std::string::npos) << what;
  }
}

TEST(ScaleOutMulti, WakeMaskRetirementLeavesLastClusterArmed) {
  // The dispatch driver retires clusters in order by rewriting the wake
  // mask to 1 << c before each WFE; after a clean run the mask still
  // points at the last cluster, proving the driver really drove it.
  HeteroSystemParams params;
  params.num_clusters = 2;
  HeteroSystem sys(params);
  std::vector<kernels::KernelCase> cases = {make_case("matmul", 77),
                                            make_case("cnn", 123)};
  const MultiSystemPackage pkg = package_multi_offload(cases);
  (void)run_multi_offload(sys, pkg);
  EXPECT_EQ(sys.wake_mask(), 1u << 1);
  EXPECT_TRUE(sys.soc(0).eoc_gpio());
  EXPECT_TRUE(sys.soc(1).eoc_gpio());
}

}  // namespace
}  // namespace ulp::system
