// Full-system co-simulation tests: a simulated Cortex-M4 host running the
// bare-metal offload driver against the cycle-stepped cluster, byte-timed
// SPI wire and GPIO handshake.
#include <gtest/gtest.h>

#include "runtime/offload.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace ulp::system {
namespace {

using kernels::Target;

TEST(HeteroSystem, FullOffloadBitExact) {
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);
  const FullSystemPackage pkg = package_offload(kc);

  HeteroSystem sys;
  sys.load_host_program(pkg.host_program);
  sys.run_to_host_halt();

  const auto stats = sys.stats();
  EXPECT_TRUE(stats.accel_started);
  EXPECT_TRUE(sys.soc().eoc_gpio());

  std::vector<u8> result(kc.output_bytes);
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<u8>(sys.host_sram().load(
        pkg.spec.host_output_addr + static_cast<Addr>(i), 1, false));
  }
  EXPECT_EQ(result, kc.expected);
}

TEST(HeteroSystem, WireMovesExactlyThePayloads) {
  const auto accel_cfg = core::or10n_config();
  const auto kc =
      kernels::make_svm_linear(accel_cfg.features, 4, Target::kCluster, 3);
  const FullSystemPackage pkg = package_offload(kc);
  HeteroSystem sys;
  sys.load_host_program(pkg.host_program);
  sys.run_to_host_halt();
  EXPECT_EQ(sys.stats().wire_bytes,
            pkg.spec.image_len + pkg.spec.input_len + pkg.spec.output_len);
}

TEST(HeteroSystem, ClusterRunsOnlyAfterFetchEnable) {
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);
  const FullSystemPackage pkg = package_offload(kc);
  HeteroSystem sys;
  sys.load_host_program(pkg.host_program);
  // Before any stepping the accelerator must be idle.
  EXPECT_FALSE(sys.stats().accel_started);
  // Step through roughly the image transfer: still not started (the image
  // alone takes image_len * 4 host cycles on the quad wire).
  for (u32 i = 0; i < pkg.spec.image_len; ++i) sys.step();
  EXPECT_FALSE(sys.stats().accel_started);
  sys.run_to_host_halt();
  EXPECT_TRUE(sys.stats().accel_started);
}

TEST(HeteroSystem, AgreesWithAnalyticModelOnDuration) {
  // The analytic OffloadSession approximates this ground truth; for equal
  // clocks and the same payloads the end-to-end durations must agree
  // within modelling tolerance (the analytic side also bills the 8 KiB
  // runtime image; the simulated side pays polling/driver overhead).
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);

  const double f = mhz(16);
  HeteroSystemParams params;
  params.mcu_freq_hz = f;
  params.pulp_freq_hz = f;
  const FullSystemPackage pkg = package_offload(kc);
  HeteroSystem sys(params);
  sys.load_host_program(pkg.host_program);
  const u64 host_cycles = sys.run_to_host_halt();
  const double t_system = static_cast<double>(host_cycles) / f;

  link::SpiLinkConfig lcfg;
  lcfg.lanes = 4;
  lcfg.max_freq_hz = mhz(48);
  runtime::OffloadSession session(host::stm32l476(), f,
                                  link::SpiLink(lcfg));
  const power::OperatingPoint op{0.5, f};
  const auto outcome = session.run(kc.offload_request(), op);
  const double t_analytic = outcome.timing.total_s(1, false);

  EXPECT_NEAR(t_system / t_analytic, 1.0, 0.35)
      << "system " << t_system * 1e6 << "us vs analytic "
      << t_analytic * 1e6 << "us";
}

TEST(HeteroSystem, SlowerLinkLanesTakeLonger) {
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);
  const FullSystemPackage pkg = package_offload(kc);
  u64 cycles_by_lanes[2] = {0, 0};
  int idx = 0;
  for (u32 lanes : {1u, 4u}) {
    HeteroSystemParams params;
    params.spi_lanes = lanes;
    HeteroSystem sys(params);
    sys.load_host_program(pkg.host_program);
    cycles_by_lanes[idx++] = sys.run_to_host_halt();
  }
  EXPECT_GT(cycles_by_lanes[0], cycles_by_lanes[1]);
}

TEST(HeteroSystem, FasterClusterClockShortensTheRun) {
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);
  const FullSystemPackage pkg = package_offload(kc);
  u64 slow = 0, fast = 0;
  {
    HeteroSystemParams p;
    p.pulp_freq_hz = mhz(8);
    HeteroSystem sys(p);
    sys.load_host_program(pkg.host_program);
    slow = sys.run_to_host_halt();
  }
  {
    HeteroSystemParams p;
    p.pulp_freq_hz = mhz(64);
    HeteroSystem sys(p);
    sys.load_host_program(pkg.host_program);
    fast = sys.run_to_host_halt();
  }
  EXPECT_GT(slow, fast + 1000);
}

TEST(HeteroSystem, HostSleepsThroughTheComputePhase) {
  // With the default WFI-style wait the host is clock-gated for nearly all
  // of the cluster's compute time — the low-power behaviour the paper's
  // energy model assumes.
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);
  const FullSystemPackage pkg = package_offload(kc);
  HeteroSystem sys;
  sys.load_host_program(pkg.host_program);
  sys.run_to_host_halt();
  const auto& perf = sys.host_core().perf();
  EXPECT_GT(perf.sleep_cycles, perf.cycles / 4)
      << "host should spend a large fraction of the offload asleep";
  // And the result is still collected correctly.
  std::vector<u8> result(kc.output_bytes);
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<u8>(sys.host_sram().load(
        pkg.spec.host_output_addr + static_cast<Addr>(i), 1, false));
  }
  EXPECT_EQ(result, kc.expected);
}

TEST(HeteroSystem, ConcurrentHostTaskRunsDuringCompute) {
  // The Discussion's heterogeneous-task model: while the cluster computes,
  // the host driver executes its own task rounds in the EOC wait loop. The
  // offload result must stay bit-exact and the task counter must advance.
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            Target::kCluster, 77);
  FullSystemPackage pkg = package_offload(kc);
  const Addr counter =
      (pkg.spec.host_output_addr + pkg.spec.output_len + 3) & ~3u;
  pkg.spec.host_task_counter_addr = counter;
  pkg.spec.host_task = [](codegen::Builder& bld) {
    // A deliberately slow busy-round: ~100 cycles of "useful" host work.
    bld.li(5, 50);
    bld.loop(5, 15, [&] { bld.emit(isa::Opcode::kAddi, 6, 6, 0, 1); });
  };
  pkg.host_program = build_host_driver(core::cortex_m4_config().features,
                                       pkg.spec);
  pkg.host_program.data.push_back(
      {pkg.spec.host_image_addr, isa::serialize(kc.program)});
  pkg.host_program.data.push_back({pkg.spec.host_input_addr, kc.input});

  HeteroSystem sys;
  sys.load_host_program(pkg.host_program);
  sys.run_to_host_halt();

  std::vector<u8> result(kc.output_bytes);
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = static_cast<u8>(sys.host_sram().load(
        pkg.spec.host_output_addr + static_cast<Addr>(i), 1, false));
  }
  EXPECT_EQ(result, kc.expected);
  const u32 rounds = sys.host_sram().load(counter, 4, false);
  EXPECT_GT(rounds, 10u);  // plenty of host work fit into the compute time
}

TEST(HostDriver, RejectsNothingButIsWellFormed) {
  // The generated driver is a valid program: serialise/deserialise round
  // trip and a sane instruction count.
  const auto kc = kernels::make_cnn(core::or10n_config().features, 4,
                                    Target::kCluster, 1);
  const FullSystemPackage pkg = package_offload(kc);
  const auto image = isa::serialize(pkg.host_program);
  const auto back = isa::deserialize(image);
  EXPECT_EQ(back.code, pkg.host_program.code);
  EXPECT_LT(pkg.host_program.code.size(), 100u);
}

}  // namespace
}  // namespace ulp::system
