// Trace instrumentation of the full co-simulation: host MCU, SPI wire and
// cluster tracks must tell a consistent story about one offload, and the
// export must survive a real multi-clock-domain run.
#include <gtest/gtest.h>

#include <sstream>

#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"
#include "trace/event_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"
#include "trace/json_check.hpp"

namespace ulp::system {
namespace {

struct TracedRun {
  trace::EventTrace trace;
  trace::MetricsRegistry metrics;
  FullSystemPackage pkg;
  u64 host_cycles = 0;
  u64 wire_bytes = 0;
};

TracedRun run_traced(u64 seed = 77) {
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            kernels::Target::kCluster, seed);
  TracedRun r;
  r.pkg = package_offload(kc);
  HeteroSystem sys;
  sys.attach_trace({&r.trace, &r.metrics});
  sys.load_host_program(r.pkg.host_program);
  r.host_cycles = sys.run_to_host_halt();
  r.wire_bytes = sys.stats().wire_bytes;
  r.trace.close_open_spans();
  return r;
}

trace::EventTrace::TrackId track_named(const trace::EventTrace& t,
                                       std::string_view name) {
  for (trace::EventTrace::TrackId i = 0; i < t.tracks().size(); ++i) {
    if (t.tracks()[i].name == name) return i;
  }
  ADD_FAILURE() << "no track named " << name;
  return 0;
}

TEST(HeteroTrace, HostTrackCoversTheWholeRun) {
  const TracedRun r = run_traced();
  const auto host = track_named(r.trace, "host.mcu");
  // run + sleep spans partition the host timeline up to the halt.
  const u64 covered = r.trace.total_span_ticks(host, "run") +
                      r.trace.total_span_ticks(host, "sleep");
  EXPECT_GT(r.trace.total_span_ticks(host, "run"), 0u);
  EXPECT_GT(r.trace.total_span_ticks(host, "sleep"), 0u);
  EXPECT_LE(covered, r.host_cycles);
  EXPECT_GE(covered, r.host_cycles - 2);  // halt edge may trim one cycle
  // Exactly one EOC rise and one halt marker.
  size_t eoc = 0;
  size_t halt = 0;
  for (const auto& e : r.trace.events()) {
    if (e.kind != trace::EventTrace::EventKind::kInstant) continue;
    if (e.name == "eoc") ++eoc;
    if (e.name == "halt" && e.track == host) ++halt;
  }
  EXPECT_EQ(eoc, 1u);
  EXPECT_EQ(halt, 1u);
}

TEST(HeteroTrace, WireSpansAccountForEveryByte) {
  TracedRun r = run_traced();
  const auto spi = track_named(r.trace, "link.spi");
  // Driver sequence: image tx, input tx, (EOC,) output rx.
  EXPECT_EQ(r.trace.spans_named(spi, "spi.tx").size(), 2u);
  EXPECT_EQ(r.trace.spans_named(spi, "spi.rx").size(), 1u);
  // The byte counts ride on the spans and sum to the wire total.
  double arg_bytes = 0;
  for (const char* name : {"spi.tx", "spi.rx"}) {
    for (const auto* e : r.trace.spans_named(spi, name)) {
      for (const auto& a : e->args) {
        if (a.key == "bytes") arg_bytes += a.value;
      }
    }
  }
  EXPECT_EQ(static_cast<u64>(arg_bytes), r.wire_bytes);
  EXPECT_EQ(r.metrics.histogram("spi.payload_bytes").sum(), r.wire_bytes);
  EXPECT_EQ(r.metrics.counter("spi.transfers").value(), 3u);
}

TEST(HeteroTrace, ClusterTracksRunInTheirOwnClockDomain) {
  const TracedRun r = run_traced();
  HeteroSystemParams defaults;
  const auto c0 = track_named(r.trace, "cluster.core0");
  EXPECT_DOUBLE_EQ(r.trace.tracks()[c0].ticks_per_second,
                   defaults.pulp_freq_hz);
  const auto host = track_named(r.trace, "host.mcu");
  EXPECT_DOUBLE_EQ(r.trace.tracks()[host].ticks_per_second,
                   defaults.mcu_freq_hz);
  // The cluster computed: a run span exists on every core.
  for (int i = 0; i < 4; ++i) {
    const auto t =
        track_named(r.trace, "cluster.core" + std::to_string(i));
    EXPECT_GT(r.trace.total_span_ticks(t, "run"), 0u) << "core " << i;
  }
  // DMA staged the payloads on its own track.
  const auto dma = track_named(r.trace, "cluster.dma");
  EXPECT_GE(r.trace.spans_named(dma, "dma.xfer").size(), 1u);
}

TEST(HeteroTrace, ExportsValidJsonForTheFullSystem) {
  TracedRun r = run_traced();
  std::ostringstream os;
  ASSERT_TRUE(trace::write_chrome_trace(r.trace, os).ok());
  const auto check = trace::testing::check_json(os.str());
  ASSERT_TRUE(check.ok) << check.error;
  for (const char* needle : {"host.mcu", "link.spi", "cluster.core3",
                             "spi.tx", "eoc"}) {
    EXPECT_NE(os.str().find(needle), std::string::npos) << needle;
  }
  const std::string report = trace::profile_report(r.trace, &r.metrics);
  EXPECT_NE(report.find("host.mcu"), std::string::npos);
  EXPECT_NE(report.find("=== metrics ==="), std::string::npos);
}

TEST(HeteroTrace, TracedAndUntracedRunsAgreeExactly) {
  const auto accel_cfg = core::or10n_config();
  const auto kc = kernels::make_matmul_char(accel_cfg.features, 4,
                                            kernels::Target::kCluster, 77);
  const FullSystemPackage pkg = package_offload(kc);

  HeteroSystem plain;
  plain.load_host_program(pkg.host_program);
  const u64 plain_cycles = plain.run_to_host_halt();

  trace::EventTrace trace;
  trace::MetricsRegistry metrics;
  HeteroSystem traced;
  traced.attach_trace({&trace, &metrics});
  traced.load_host_program(pkg.host_program);
  const u64 traced_cycles = traced.run_to_host_halt();

  // Observation must not perturb the simulation.
  EXPECT_EQ(plain_cycles, traced_cycles);
  EXPECT_EQ(plain.stats().wire_bytes, traced.stats().wire_bytes);
  EXPECT_EQ(plain.stats().cluster_cycles, traced.stats().cluster_cycles);
  EXPECT_FALSE(trace.empty());
}

}  // namespace
}  // namespace ulp::system
