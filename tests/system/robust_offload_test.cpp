// Robust offload protocol on the cycle-stepped co-simulation tier: the
// CRC-checked retrying driver against the fault-injected wire, stuck-EOC
// watchdog + host-reference fallback, and stepping-mode / seed
// determinism. Part of the `robust` CTest label.
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "system/hetero_system.hpp"
#include "system/host_driver.hpp"

namespace ulp::system {
namespace {

kernels::KernelCase test_kernel() {
  const auto cfg = core::or10n_config();
  return kernels::make_matmul_char(cfg.features, 4,
                                   kernels::Target::kCluster, 99);
}

HeteroSystemParams robust_params(const link::FaultConfig& faults) {
  HeteroSystemParams p;
  p.crc_frames = true;
  p.faults = faults;
  return p;
}

struct RunResult {
  SystemOffloadResult res;
  HeteroStats stats;
};

RunResult run_robust(const kernels::KernelCase& kc,
                     const HeteroSystemParams& params,
                     const RobustOffloadOptions& opts = {}) {
  const FullSystemPackage pkg = package_robust_offload(kc, opts);
  HeteroSystem sys(params);
  RunResult r;
  r.res = run_offload_with_fallback(sys, pkg);
  r.stats = sys.stats();
  return r;
}

TEST(RobustOffloadSystem, CleanFaultConfigBehavesLikeLegacy) {
  const auto kc = test_kernel();

  // Baseline: legacy driver, raw wire.
  const FullSystemPackage legacy = package_offload(kc);
  HeteroSystem base_sys{HeteroSystemParams{}};
  const auto base = run_offload_with_fallback(base_sys, legacy);
  ASSERT_TRUE(base.status.ok());
  ASSERT_EQ(base.output, kc.expected);

  // Robust protocol with zero fault rates: same bytes, clean verdict, no
  // rejects; only the CRC trailers and retry bookkeeping differ in time.
  const auto r = run_robust(kc, robust_params(link::FaultConfig{}));
  ASSERT_TRUE(r.res.status.ok()) << r.res.status.message();
  EXPECT_EQ(r.res.driver_status, kDriverStatusOk);
  EXPECT_FALSE(r.res.used_host_fallback);
  EXPECT_EQ(r.res.output, kc.expected);
  EXPECT_EQ(r.stats.link_crc_errors, 0u);
  EXPECT_EQ(r.stats.fault_count, 0u);
  // Payload byte accounting is identical: CRC trailers move no bytes.
  EXPECT_EQ(r.stats.wire_bytes, base.output.size() + kc.input.size() +
                                    legacy.spec.image_len);
}

TEST(RobustOffloadSystem, FlipFaultsRecoveredByDriverRetry) {
  const auto kc = test_kernel();
  link::FaultConfig faults;
  faults.seed = 13;
  faults.tx_flip_rate = 3e-4;
  faults.rx_flip_rate = 3e-4;
  RobustOffloadOptions opts;
  opts.max_transfer_retries = 8;  // generous: recovery must succeed
  const auto r = run_robust(kc, robust_params(faults), opts);

  ASSERT_TRUE(r.res.status.ok()) << r.res.status.message();
  EXPECT_EQ(r.res.driver_status, kDriverStatusOk);
  EXPECT_FALSE(r.res.used_host_fallback);
  EXPECT_EQ(r.res.output, kc.expected)
      << "recovered offload must be bit-exact";
  // Seed 13 at these rates deterministically corrupts at least one frame
  // (pinned by the determinism test below).
  EXPECT_GT(r.stats.fault_count, 0u);
  EXPECT_GT(r.stats.link_crc_errors, 0u);
  EXPECT_GT(r.stats.link_frames, 3u) << "retries imply extra frames";
}

TEST(RobustOffloadSystem, SameSeedSameRun) {
  const auto kc = test_kernel();
  link::FaultConfig faults;
  faults.seed = 13;
  faults.tx_flip_rate = 3e-4;
  faults.rx_flip_rate = 3e-4;
  RobustOffloadOptions opts;
  opts.max_transfer_retries = 8;
  const auto a = run_robust(kc, robust_params(faults), opts);
  const auto b = run_robust(kc, robust_params(faults), opts);
  EXPECT_EQ(a.res.output, b.res.output);
  EXPECT_EQ(a.res.host_cycles, b.res.host_cycles);
  EXPECT_EQ(a.res.driver_status, b.res.driver_status);
  EXPECT_EQ(a.stats.link_frames, b.stats.link_frames);
  EXPECT_EQ(a.stats.link_crc_errors, b.stats.link_crc_errors);
  EXPECT_EQ(a.stats.fault_count, b.stats.fault_count);
  EXPECT_EQ(a.stats.cluster_cycles, b.stats.cluster_cycles);
}

TEST(RobustOffloadSystem, SteppingModesIdenticalUnderFaults) {
  // The injector draws per architectural event, never per simulation
  // quantum: the reference-stepped and fast-forward co-simulations must
  // agree cycle-for-cycle under the same fault seed.
  const auto kc = test_kernel();
  auto run_mode = [&](bool reference) {
    link::FaultConfig faults;
    faults.seed = 13;
    faults.tx_flip_rate = 3e-4;
    faults.rx_flip_rate = 3e-4;
    HeteroSystemParams p = robust_params(faults);
    p.cluster_params.reference_stepping = reference;
    RobustOffloadOptions opts;
    opts.max_transfer_retries = 8;
    return run_robust(kc, p, opts);
  };
  const auto ref = run_mode(true);
  const auto ff = run_mode(false);
  ASSERT_TRUE(ref.res.status.ok()) << ref.res.status.message();
  ASSERT_TRUE(ff.res.status.ok()) << ff.res.status.message();
  EXPECT_EQ(ref.res.output, ff.res.output);
  EXPECT_EQ(ref.res.host_cycles, ff.res.host_cycles);
  EXPECT_EQ(ref.stats.cluster_cycles, ff.stats.cluster_cycles);
  EXPECT_EQ(ref.stats.link_frames, ff.stats.link_frames);
  EXPECT_EQ(ref.stats.link_crc_errors, ff.stats.link_crc_errors);
  EXPECT_EQ(ref.stats.fault_count, ff.stats.fault_count);
}

TEST(RobustOffloadSystem, StuckEocExpiresWatchdogAndFallsBack) {
  const auto kc = test_kernel();
  link::FaultConfig faults;
  faults.stuck_eoc_waits = 1;  // the driver's only fetch-enable hangs
  RobustOffloadOptions opts;
  opts.eoc_watchdog_rounds = 2000;  // short leash: the test stays fast
  const auto r = run_robust(kc, robust_params(faults), opts);

  EXPECT_EQ(r.res.driver_status, kDriverStatusEocTimeout);
  EXPECT_EQ(r.res.status.code(), StatusCode::kTimeout)
      << r.res.status.message();
  EXPECT_TRUE(r.res.used_host_fallback);
  EXPECT_EQ(r.res.output, kc.expected)
      << "degraded mode must still deliver correct results";
}

TEST(RobustOffloadSystem, ExhaustedTransferRetriesReportTypedFailure) {
  const auto kc = test_kernel();
  link::FaultConfig faults;
  faults.seed = 1;
  faults.nak_rate = 1.0;  // every frame rejected: image TX can't succeed
  RobustOffloadOptions opts;
  opts.max_transfer_retries = 2;
  const auto r = run_robust(kc, robust_params(faults), opts);

  EXPECT_EQ(r.res.driver_status, kDriverStatusImageTxFailed);
  EXPECT_EQ(r.res.status.code(), StatusCode::kRetriesExhausted);
  EXPECT_TRUE(r.res.used_host_fallback);
  EXPECT_EQ(r.res.output, kc.expected);
  // 1 first try + 2 retries, all NAK'd.
  EXPECT_EQ(r.stats.link_frames, 3u);
  EXPECT_EQ(r.stats.link_crc_errors, 3u);
}

TEST(RobustOffloadSystem, RobustDriverStatusWordReadableFromHostSram) {
  // The status word and its layout (scratch at +4) are API: pin that a
  // clean run leaves kDriverStatusOk at spec.status_addr.
  const auto kc = test_kernel();
  const FullSystemPackage pkg = package_robust_offload(kc);
  ASSERT_NE(pkg.spec.status_addr, 0u);
  ASSERT_EQ(pkg.spec.status_addr % 4, 0u) << "status word must be aligned";
  HeteroSystem sys(robust_params(link::FaultConfig{}));
  sys.load_host_program(pkg.host_program);
  sys.run_to_host_halt();
  const u32 status = sys.host_sram().load(pkg.spec.status_addr, 4, false);
  EXPECT_EQ(status, kDriverStatusOk);
}

}  // namespace
}  // namespace ulp::system
