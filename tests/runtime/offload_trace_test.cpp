// Acceptance test of the offload-session instrumentation: the phase spans
// an OffloadSession records must agree, cycle for cycle, with the
// OffloadTiming it reports, and the exported Chrome trace must be valid
// JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"
#include "trace/event_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_export.hpp"
#include "trace/json_check.hpp"

namespace ulp::runtime {
namespace {

constexpr double kMcuFreqHz = 16e6;

OffloadSession make_session(double mcu_freq_hz = kMcuFreqHz) {
  link::SpiLinkConfig lcfg;
  lcfg.lanes = host::stm32l476().spi_lanes;
  lcfg.max_freq_hz = host::stm32l476().spi_max_hz;
  return OffloadSession(host::stm32l476(), mcu_freq_hz,
                        link::SpiLink(lcfg));
}

kernels::KernelCase make_case(u64 seed = 3) {
  const auto cfg = core::or10n_config();
  return kernels::make_matmul_char(cfg.features, 4,
                                   kernels::Target::kCluster, seed);
}

u64 cycles_of(double seconds, double freq_hz = kMcuFreqHz) {
  return static_cast<u64>(std::llround(seconds * freq_hz));
}

TEST(OffloadTrace, PhaseSpanDurationsMatchOffloadTiming) {
  const auto kc = make_case();
  auto session = make_session();
  trace::EventTrace trace;
  trace::MetricsRegistry metrics;
  session.attach_trace({&trace, &metrics}, "offload");
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  const auto out = session.run(kc.offload_request(), op);
  ASSERT_EQ(out.output, kc.expected);

  ASSERT_EQ(trace.tracks().size(), 1u);
  EXPECT_EQ(trace.tracks()[0].name, "offload");
  EXPECT_DOUBLE_EQ(trace.tracks()[0].ticks_per_second, kMcuFreqHz);

  // Per phase: span durations sum to exactly the cycle count the timing
  // model reports at the session's MCU clock.
  const OffloadTiming& t = out.timing;
  EXPECT_EQ(trace.total_span_ticks(0, "binary_xfer"), cycles_of(t.t_binary_s));
  EXPECT_EQ(trace.total_span_ticks(0, "input_xfer"), cycles_of(t.t_in_s));
  EXPECT_EQ(trace.total_span_ticks(0, "compute"), cycles_of(t.t_compute_s));
  EXPECT_EQ(trace.total_span_ticks(0, "output_xfer"), cycles_of(t.t_out_s));

  // The compute span carries the accelerator cycle count as an arg.
  const auto compute = trace.spans_named(0, "compute");
  ASSERT_EQ(compute.size(), 1u);
  ASSERT_EQ(compute[0]->args.size(), 1u);
  EXPECT_EQ(compute[0]->args[0].key, "accel_cycles");
  EXPECT_DOUBLE_EQ(compute[0]->args[0].value,
                   static_cast<double>(t.accel_cycles));

  // Phases tile the run: binary -> input -> compute -> output, no overlap.
  const auto* binary = trace.spans_named(0, "binary_xfer")[0];
  const auto* input = trace.spans_named(0, "input_xfer")[0];
  const auto* output = trace.spans_named(0, "output_xfer")[0];
  EXPECT_EQ(binary->begin_tick, 0u);
  EXPECT_EQ(input->begin_tick, binary->end_tick);
  EXPECT_EQ(compute[0]->begin_tick, input->end_tick);
  EXPECT_EQ(output->begin_tick, compute[0]->end_tick);
}

TEST(OffloadTrace, RepeatedRunsAppendWithoutOverlap) {
  const auto kc = make_case();
  auto session = make_session();
  trace::EventTrace trace;
  session.attach_trace({&trace, nullptr}, "offload");
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  const auto first = session.run(kc.offload_request(), op);
  (void)session.run(kc.offload_request(), op);

  const auto binaries = trace.spans_named(0, "binary_xfer");
  ASSERT_EQ(binaries.size(), 2u);
  // The second run starts where the first ended.
  const auto outputs = trace.spans_named(0, "output_xfer");
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(binaries[1]->begin_tick, outputs[0]->end_tick);
  EXPECT_EQ(trace.total_span_ticks(0, "compute"),
            2 * cycles_of(first.timing.t_compute_s));
}

TEST(OffloadTrace, ExportedChromeTraceIsValidJson) {
  const auto kc = make_case();
  auto session = make_session();
  trace::EventTrace trace;
  trace::MetricsRegistry metrics;
  session.attach_trace({&trace, &metrics}, "offload@16MHz");
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  (void)session.run(kc.offload_request(), op);

  std::ostringstream os;
  ASSERT_TRUE(trace::write_chrome_trace(trace, os).ok());
  const auto check = trace::testing::check_json(os.str());
  ASSERT_TRUE(check.ok) << check.error;
  for (const char* needle :
       {"\"traceEvents\"", "offload@16MHz", "binary_xfer", "input_xfer",
        "compute", "output_xfer", "accel_cycles"}) {
    EXPECT_NE(os.str().find(needle), std::string::npos) << needle;
  }
}

TEST(OffloadTrace, MetricsRecordPayloadsAndRuns) {
  const auto kc = make_case();
  auto session = make_session();
  trace::MetricsRegistry metrics;
  session.attach_trace({nullptr, &metrics});  // metrics-only sink works
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  const auto out = session.run(kc.offload_request(), op);

  EXPECT_EQ(metrics.counter("offload.runs").value(), 1u);
  EXPECT_EQ(metrics.histogram("offload.in_bytes").sum(),
            out.timing.in_bytes);
  EXPECT_EQ(metrics.histogram("offload.out_bytes").sum(),
            out.timing.out_bytes);
  EXPECT_EQ(metrics.histogram("offload.binary_bytes").sum(),
            out.timing.binary_bytes);
  EXPECT_EQ(metrics.histogram("offload.compute_cycles").sum(),
            out.timing.accel_cycles);
}

TEST(OffloadTrace, ClusterDetailTracksAppearOnRequest) {
  const auto kc = make_case();
  auto session = make_session();
  trace::EventTrace trace;
  session.attach_trace({&trace, nullptr}, "offload",
                       /*trace_cluster=*/true);
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  (void)session.run(kc.offload_request(), op);
  trace.close_open_spans();

  bool accel_core0 = false;
  bool accel_dma = false;
  for (const auto& tr : trace.tracks()) {
    if (tr.name == "offload.accel.core0") {
      accel_core0 = true;
      // Cluster ticks run at the accelerator operating point, not the
      // host clock, so the exported timeline aligns the two domains.
      EXPECT_DOUBLE_EQ(tr.ticks_per_second, op.freq_hz);
    }
    if (tr.name == "offload.accel.dma") accel_dma = true;
  }
  EXPECT_TRUE(accel_core0);
  EXPECT_TRUE(accel_dma);
}

TEST(OffloadTrace, UntracedSessionRecordsNothing) {
  const auto kc = make_case();
  auto session = make_session();
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  const auto out = session.run(kc.offload_request(), op);
  EXPECT_EQ(out.output, kc.expected);  // behaviour unchanged without sinks
}

}  // namespace
}  // namespace ulp::runtime
