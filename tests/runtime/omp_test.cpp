// The OpenMP-style frontend: data clauses, worksharing, section barriers.
#include "runtime/omp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "host/mcu.hpp"
#include "kernels/runner.hpp"
#include "soc/pulp_soc.hpp"

namespace ulp::omp {
namespace {

using codegen::Builder;
using isa::Opcode;

/// Runs an Offloadable on a fresh 4-core SoC and returns the output bytes.
std::vector<u8> run_offloadable(const Offloadable& off, u32 num_cores = 4) {
  cluster::ClusterParams params;
  params.num_cores = num_cores;
  soc::PulpSoc soc(params);
  soc.boot_image(isa::serialize(off.program));
  soc.qspi_write(off.input_addr, off.input);
  soc.run_to_eoc();
  std::vector<u8> out(off.output_bytes);
  soc.qspi_read(off.output_addr, out);
  return out;
}

std::vector<u8> to_bytes16(const std::vector<i16>& v) {
  std::vector<u8> out(v.size() * 2);
  for (size_t i = 0; i < v.size(); ++i) {
    out[2 * i] = static_cast<u8>(v[i]);
    out[2 * i + 1] = static_cast<u8>(v[i] >> 8);
  }
  return out;
}

TEST(OmpTarget, VectorAddParallelFor) {
  constexpr u32 kN = 500;
  Rng rng(3);
  std::vector<i16> a(kN), b(kN);
  for (u32 i = 0; i < kN; ++i) {
    a[i] = static_cast<i16>(rng.uniform(-30000, 30000));
    b[i] = static_cast<i16>(rng.uniform(-30000, 30000));
  }
  const auto a_bytes = to_bytes16(a);
  const auto b_bytes = to_bytes16(b);

  TargetRegion region(core::or10n_config().features, 4);
  const Addr dev_a = region.map_to(a_bytes);
  const Addr dev_b = region.map_to(b_bytes);
  const Addr dev_c = region.map_from(kN * 2);
  region.parallel_for(kN, [&](Builder& bld, const ForContext& ctx) {
    // c[i] = a[i] + b[i]
    bld.emit(Opcode::kSlli, ctx.r_tmp0, ctx.r_index, 0, 1);
    bld.li(ctx.r_tmp1, dev_a);
    bld.emit(Opcode::kAdd, ctx.r_tmp1, ctx.r_tmp1, ctx.r_tmp0);
    bld.emit(Opcode::kLh, ctx.r_tmp2, ctx.r_tmp1, 0, 0);
    bld.li(ctx.r_tmp1, dev_b);
    bld.emit(Opcode::kAdd, ctx.r_tmp1, ctx.r_tmp1, ctx.r_tmp0);
    bld.emit(Opcode::kLh, ctx.r_tmp3, ctx.r_tmp1, 0, 0);
    bld.emit(Opcode::kAdd, ctx.r_tmp2, ctx.r_tmp2, ctx.r_tmp3);
    bld.li(ctx.r_tmp1, dev_c);
    bld.emit(Opcode::kAdd, ctx.r_tmp1, ctx.r_tmp1, ctx.r_tmp0);
    bld.emit(Opcode::kSh, ctx.r_tmp2, ctx.r_tmp1, 0, 0);
  });
  const Offloadable off = region.compile();
  const std::vector<u8> out = run_offloadable(off);

  ASSERT_EQ(out.size(), kN * 2);
  for (u32 i = 0; i < kN; ++i) {
    const i16 got = static_cast<i16>(static_cast<u16>(out[2 * i]) |
                                     static_cast<u16>(out[2 * i + 1]) << 8);
    EXPECT_EQ(got, static_cast<i16>(a[i] + b[i])) << i;
  }
}

TEST(OmpTarget, SectionsSeparatedByBarriers) {
  // Section 1: every core writes its id into a slot. Section 2: core 0
  // sums the slots — correct only if the barrier separates them.
  TargetRegion region(core::or10n_config().features, 4);
  const Addr slots = region.map_alloc(16);
  const Addr sum = region.map_from(4);
  region.parallel([&](Builder& bld, const runtime::OutlineRegs& regs) {
    bld.li(5, slots);
    bld.emit(Opcode::kSlli, 6, regs.core_id, 0, 2);
    bld.emit(Opcode::kAdd, 5, 5, 6);
    bld.emit(Opcode::kSw, regs.core_id, 5, 0, 0);
  });
  region.parallel([&](Builder& bld, const runtime::OutlineRegs& regs) {
    const auto skip = bld.make_label();
    bld.branch(Opcode::kBne, regs.core_id, codegen::zero, skip);
    bld.li(5, slots);
    bld.li(7, 0);
    for (int i = 0; i < 4; ++i) {
      bld.emit(Opcode::kLw, 6, 5, 0, 4 * i);
      bld.emit(Opcode::kAdd, 7, 7, 6);
    }
    bld.li(5, sum);
    bld.emit(Opcode::kSw, 7, 5, 0, 0);
    bld.bind(skip);
  });
  const Offloadable off = region.compile();
  const std::vector<u8> out = run_offloadable(off);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0u + 1 + 2 + 3);
}

TEST(OmpTarget, DeviceAllocationIsWordAlignedAndDisjoint) {
  TargetRegion region(core::or10n_config().features, 4);
  std::vector<u8> five(5, 0xAA);
  const Addr a = region.map_to(five);
  const Addr b = region.map_alloc(2);
  const Addr c = region.map_from(7);
  EXPECT_EQ(a % 4, 0u);
  EXPECT_EQ(b % 4, 0u);
  EXPECT_EQ(c % 4, 0u);
  EXPECT_GE(b, a + 5);
  EXPECT_GE(c, b + 2);
}

TEST(OmpTarget, TcdmCapacityEnforced) {
  TargetRegion region(core::or10n_config().features, 4);
  EXPECT_THROW((void)region.map_alloc(65 * 1024), SimError);
}

TEST(OmpTarget, CompileIsSingleShot) {
  TargetRegion region(core::or10n_config().features, 4);
  (void)region.map_from(4);
  region.parallel([](Builder& bld, const runtime::OutlineRegs&) {
    bld.nop();
  });
  (void)region.compile();
  EXPECT_THROW((void)region.compile(), SimError);
  EXPECT_THROW((void)region.map_alloc(4), SimError);
}

TEST(OmpTarget, WorksOnOneCore) {
  TargetRegion region(core::or10n_config().features, 1);
  const Addr out = region.map_from(4);
  region.parallel_for(10, [&](Builder& bld, const ForContext& ctx) {
    bld.li(ctx.r_tmp1, out);
    bld.emit(Opcode::kLw, ctx.r_tmp2, ctx.r_tmp1, 0, 0);
    bld.emit(Opcode::kAdd, ctx.r_tmp2, ctx.r_tmp2, ctx.r_index);
    bld.emit(Opcode::kSw, ctx.r_tmp2, ctx.r_tmp1, 0, 0);
  });
  const Offloadable off = region.compile();
  const std::vector<u8> result = run_offloadable(off, 1);
  EXPECT_EQ(result[0], 45u);  // sum 0..9
}

}  // namespace
}  // namespace ulp::omp
