// Robust offload protocol on the analytic tier: seeded-fault determinism,
// retry-until-success bit-exactness, typed failure + host-reference
// fallback, stepping-mode equivalence, and the audited link-bound
// double-buffering steady state. Part of the `robust` CTest label.
#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "link/fault_injector.hpp"
#include "runtime/offload.hpp"

namespace ulp::runtime {
namespace {

kernels::KernelCase test_kernel(u64 seed = 3) {
  const auto cfg = core::or10n_config();
  return kernels::make_matmul_char(cfg.features, 4,
                                   kernels::Target::kCluster, seed);
}

OffloadSession make_session(double mcu_freq = mhz(16), u32 lanes = 4) {
  link::SpiLinkConfig lcfg;
  lcfg.lanes = lanes;
  return OffloadSession(host::stm32l476(), mcu_freq, link::SpiLink(lcfg));
}

power::OperatingPoint op_for(const OffloadSession& s) {
  return {0.5, s.power_model().fmax_hz(0.5)};
}

TEST(RobustSession, CleanInjectorMatchesFaultFreeRunExactly) {
  const auto kc = test_kernel();

  auto clean = make_session();
  const auto baseline = clean.run(kc.offload_request(), op_for(clean));

  // Robust protocol on, but zero fault rates: the only difference allowed
  // is the CRC trailer's 32 bits per framed transfer.
  link::FaultInjector inj(link::FaultConfig{});
  auto robust = make_session();
  robust.attach_faults(&inj);
  const auto o = robust.run(kc.offload_request(), op_for(robust));

  ASSERT_TRUE(o.status.ok()) << o.status.message();
  EXPECT_EQ(o.output, baseline.output);
  EXPECT_EQ(o.output, kc.expected);
  EXPECT_EQ(o.robust.crc_errors, 0u);
  EXPECT_EQ(o.robust.retransmissions, 0u);
  EXPECT_EQ(o.robust.watchdog_expiries, 0u);
  EXPECT_EQ(o.robust.offload_attempts, 1u);
  EXPECT_DOUBLE_EQ(o.timing.t_retry_s, 0.0);
  EXPECT_EQ(o.timing.accel_cycles, baseline.timing.accel_cycles);
  // CRC framing costs exactly 32 bits per transfer at the link clock.
  const double bps = clean.link().bandwidth_bps(mhz(16));
  EXPECT_NEAR(o.timing.t_in_s - baseline.timing.t_in_s, 32.0 / bps, 1e-12);
  EXPECT_NEAR(o.timing.t_out_s - baseline.timing.t_out_s, 32.0 / bps,
              1e-12);
}

TEST(RobustSession, RetryUntilSuccessIsBitExactWithCountersNonzero) {
  const auto kc = test_kernel();

  // NAK-heavy link with a generous retry budget: attempts fail, retries
  // recover, and the delivered offload must be indistinguishable from a
  // fault-free one apart from the accounted retry cost.
  link::FaultConfig cfg;
  cfg.seed = 21;
  cfg.nak_rate = 0.4;
  link::FaultInjector inj(cfg);

  RetryPolicy policy;
  policy.max_transfer_attempts = 64;
  auto session = make_session();
  session.attach_faults(&inj, policy);
  const auto o = session.run(kc.offload_request(), op_for(session));

  ASSERT_TRUE(o.status.ok()) << o.status.message();
  EXPECT_EQ(o.output, kc.expected) << "retried offload must stay bit-exact";
  // Seed 21 at nak=0.4 over three frames deterministically NAKs at least
  // once (pinned by the determinism test below).
  EXPECT_GT(o.robust.naks, 0u);
  EXPECT_EQ(o.robust.retransmissions, o.robust.naks);
  EXPECT_GT(o.timing.t_retry_s, 0.0);
  EXPECT_GT(o.robust.retry_link_j, 0.0);

  // Retries are real time and real energy.
  const auto e = session.energy(o, op_for(session), 1, false);
  auto clean_o = o;
  clean_o.timing.t_retry_s = 0;
  clean_o.robust.retry_link_j = 0;
  const auto e_clean = session.energy(clean_o, op_for(session), 1, false);
  EXPECT_GT(e.total_j(), e_clean.total_j());
  EXPECT_GT(o.timing.total_s(1, false), clean_o.timing.total_s(1, false));
}

TEST(RobustSession, SameSeedSameRetrySchedule) {
  const auto kc = test_kernel();
  auto run_one = [&] {
    link::FaultConfig cfg;
    cfg.seed = 21;
    cfg.nak_rate = 0.4;
    link::FaultInjector inj(cfg);
    RetryPolicy policy;
    policy.max_transfer_attempts = 64;
    auto session = make_session();
    session.attach_faults(&inj, policy);
    return session.run(kc.offload_request(), op_for(session));
  };
  const auto a = run_one();
  const auto b = run_one();
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.robust.naks, b.robust.naks);
  EXPECT_EQ(a.robust.crc_errors, b.robust.crc_errors);
  EXPECT_EQ(a.robust.retransmissions, b.robust.retransmissions);
  EXPECT_DOUBLE_EQ(a.timing.t_retry_s, b.timing.t_retry_s);
  EXPECT_DOUBLE_EQ(a.robust.retry_link_j, b.robust.retry_link_j);
}

TEST(RobustSession, ExhaustedRetryBudgetReturnsTypedFailure) {
  const auto kc = test_kernel();
  link::FaultConfig cfg;
  cfg.seed = 1;
  cfg.nak_rate = 1.0;  // every frame rejected: budget must run out
  link::FaultInjector inj(cfg);
  RetryPolicy policy;
  policy.max_transfer_attempts = 3;
  auto session = make_session();
  session.attach_faults(&inj, policy);
  const auto o = session.run(kc.offload_request(), op_for(session));

  EXPECT_EQ(o.status.code(), StatusCode::kRetriesExhausted)
      << o.status.message();
  EXPECT_FALSE(o.used_host_fallback);
  // Failed offloads do not hand back garbage.
  for (const u8 b : o.output) EXPECT_EQ(b, 0u);
  EXPECT_EQ(o.robust.retransmissions, 2u) << "budget is attempts - 1";
}

TEST(RobustSession, HostFallbackDeliversReferenceOutput) {
  const auto kc = test_kernel();
  link::FaultConfig cfg;
  cfg.seed = 1;
  cfg.nak_rate = 1.0;
  link::FaultInjector inj(cfg);
  RetryPolicy policy;
  policy.max_transfer_attempts = 2;
  auto session = make_session();
  session.attach_faults(&inj, policy);
  const auto o =
      run_with_host_fallback(session, kc.offload_request(), op_for(session));

  EXPECT_FALSE(o.status.ok());
  EXPECT_TRUE(o.used_host_fallback);
  EXPECT_EQ(o.output, kc.expected)
      << "degraded mode must still produce correct results";
}

TEST(RobustSession, StuckEocRecoveredByOffloadRetry) {
  const auto kc = test_kernel();
  link::FaultConfig cfg;
  cfg.stuck_eoc_waits = 1;  // first fetch-enable hangs, second succeeds
  link::FaultInjector inj(cfg);
  auto session = make_session();
  session.attach_faults(&inj);
  const auto o = session.run(kc.offload_request(), op_for(session));

  ASSERT_TRUE(o.status.ok()) << o.status.message();
  EXPECT_EQ(o.output, kc.expected);
  EXPECT_EQ(o.robust.watchdog_expiries, 1u);
  EXPECT_EQ(o.robust.offload_attempts, 2u);
  // Each expiry burns exactly one watchdog window of host time.
  EXPECT_NEAR(o.timing.t_retry_s, RetryPolicy{}.eoc_watchdog_s, 1e-12);
}

TEST(RobustSession, StuckEocBeyondBudgetTimesOut) {
  const auto kc = test_kernel();
  link::FaultConfig cfg;
  cfg.stuck_eoc_waits = 100;  // more than any budget: line is dead
  link::FaultInjector inj(cfg);
  RetryPolicy policy;
  policy.max_offload_attempts = 3;
  auto session = make_session();
  session.attach_faults(&inj, policy);
  const auto o =
      run_with_host_fallback(session, kc.offload_request(), op_for(session));

  EXPECT_EQ(o.status.code(), StatusCode::kTimeout) << o.status.message();
  EXPECT_EQ(o.robust.watchdog_expiries, 3u);
  EXPECT_TRUE(o.used_host_fallback);
  EXPECT_EQ(o.output, kc.expected);
}

TEST(RobustSession, SteppingModesAgreeUnderFaults) {
  // The fault schedule keys off architectural events, never off stepping
  // granularity: reference and fast-forward cluster stepping must produce
  // byte- and cycle-identical offloads for the same seed.
  const auto kc = test_kernel();
  auto run_mode = [&](bool reference) {
    link::FaultConfig cfg;
    cfg.seed = 21;
    cfg.nak_rate = 0.4;
    cfg.stuck_eoc_waits = 1;
    link::FaultInjector inj(cfg);
    RetryPolicy policy;
    policy.max_transfer_attempts = 64;
    auto session = make_session();
    session.attach_faults(&inj, policy);
    session.set_reference_stepping(reference);
    return session.run(kc.offload_request(), op_for(session));
  };
  const auto ref = run_mode(true);
  const auto ff = run_mode(false);
  ASSERT_TRUE(ref.status.ok()) << ref.status.message();
  ASSERT_TRUE(ff.status.ok()) << ff.status.message();
  EXPECT_EQ(ref.output, ff.output);
  EXPECT_EQ(ref.timing.accel_cycles, ff.timing.accel_cycles);
  EXPECT_EQ(ref.robust.naks, ff.robust.naks);
  EXPECT_EQ(ref.robust.retransmissions, ff.robust.retransmissions);
  EXPECT_EQ(ref.robust.watchdog_expiries, ff.robust.watchdog_expiries);
  EXPECT_EQ(ref.robust.offload_attempts, ff.robust.offload_attempts);
  EXPECT_DOUBLE_EQ(ref.timing.t_retry_s, ff.timing.t_retry_s);
}

TEST(RobustSession, LinkBoundDoubleBufferSteadyStateIsMaxOfPhases) {
  // Satellite audit: at a link-bound operating point (slow MCU clock ->
  // slow SPI; single lane) the double-buffered schedule's steady-state
  // period must be max(transfer, compute) = t_in + t_out, not their sum
  // and not compute. Pin the closed form.
  const auto kc = test_kernel();
  auto session = make_session(mhz(2), /*lanes=*/1);
  const auto o = session.run(kc.offload_request(), op_for(session));
  ASSERT_TRUE(o.status.ok());
  const auto& t = o.timing;
  ASSERT_GT(t.t_in_s + t.t_out_s, t.t_compute_s)
      << "operating point is not link-bound; pick a slower clock";

  const double period = std::max(t.t_compute_s, t.t_in_s + t.t_out_s);
  for (const u32 n : {1u, 2u, 8u, 64u}) {
    const double expect = t.t_retry_s + t.t_binary_s + t.t_in_s +
                          (n - 1) * period + t.t_compute_s + t.t_out_s;
    EXPECT_NEAR(t.total_s(n, true), expect, 1e-12) << "n=" << n;
  }
  // Incremental cost per extra iteration is exactly one link period.
  EXPECT_NEAR(t.total_s(65, true) - t.total_s(64, true),
              t.t_in_s + t.t_out_s, 1e-12);
}

TEST(RobustSession, ComputeBoundDoubleBufferSteadyStateIsCompute) {
  // The complementary regime: fast MCU clock, quad lanes -> transfers hide
  // behind compute and the steady-state period is t_compute.
  const auto kc = test_kernel();
  auto session = make_session(mhz(80), /*lanes=*/4);
  const auto o = session.run(kc.offload_request(), op_for(session));
  ASSERT_TRUE(o.status.ok());
  const auto& t = o.timing;
  ASSERT_GT(t.t_compute_s, t.t_in_s + t.t_out_s)
      << "operating point is not compute-bound";
  EXPECT_NEAR(t.total_s(9, true) - t.total_s(8, true), t.t_compute_s,
              1e-12);
}

}  // namespace
}  // namespace ulp::runtime
