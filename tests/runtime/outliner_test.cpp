#include "runtime/outliner.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace ulp::runtime {
namespace {

using codegen::Builder;
using isa::Opcode;

TEST(StaticBounds, PartitionsExactly) {
  // For every (total, cores): the non-empty chunks must tile [0, total)
  // exactly, in order, with no overlap. Cores whose chunk starts past the
  // end legitimately get lo >= hi (their guard branch skips the work).
  for (u32 total : {1u, 4u, 7u, 16u, 64u, 126u, 200u}) {
    for (u32 cores : {1u, 2u, 3u, 4u, 8u}) {
      const u32 chunk = (total + cores - 1) / cores;
      u32 next_expected = 0;
      for (u32 id = 0; id < cores; ++id) {
        Builder bld(core::or10n_config().features);
        emit_static_bounds(bld, 3, 4, 1, total, cores, 20);
        bld.halt();
        mem::Sram sram(0, 1024);
        mem::SimpleBus bus(&sram, 1);
        core::Core cpu(0, 1, core::or10n_config(), &bus);
        const isa::Program p = bld.finalize();
        cpu.reset(&p);
        cpu.set_reg(1, id);
        cpu.run_to_halt();
        const u32 lo = cpu.reg(3);
        const u32 hi = cpu.reg(4);
        EXPECT_EQ(lo, id * chunk) << total << "/" << cores << " id " << id;
        if (lo < total) {
          EXPECT_EQ(lo, next_expected);
          EXPECT_EQ(hi, std::min(lo + chunk, total));
          next_expected = hi;
        } else {
          EXPECT_GE(lo, hi);  // empty chunk: guard branch skips the body
        }
      }
      EXPECT_EQ(next_expected, total) << total << "/" << cores;
    }
  }
}

TEST(OutlineTarget, StagesInComputesAndStagesOut) {
  // map(to:) one word, compute: every core adds its id to a TCDM slot,
  // map(from:) the word back to L2.
  const Addr l2_in = cluster::kL2Base + 0x100;
  const Addr l2_out = cluster::kL2Base + 0x200;
  const Addr tcdm = cluster::kTcdmBase;
  const isa::Program prog = outline_target(
      core::or10n_config().features, {{l2_in, tcdm, 4}}, {{tcdm, l2_out, 4}},
      [&](Builder& bld, const OutlineRegs& regs) {
        // Serialised increment: each core spins until it is its turn.
        // Simpler: core 0 multiplies the staged value by 2.
        const auto skip = bld.make_label();
        bld.branch(Opcode::kBne, regs.core_id, codegen::zero, skip);
        bld.li(5, tcdm);
        bld.emit(Opcode::kLw, 6, 5, 0, 0);
        bld.emit(Opcode::kSlli, 6, 6, 0, 1);
        bld.emit(Opcode::kSw, 6, 5, 0, 0);
        bld.bind(skip);
      });
  cluster::Cluster cl;
  cl.load_program(prog);
  cl.bus().debug_store(l2_in, 4, 21);
  cl.run();
  EXPECT_TRUE(cl.events().eoc());
  EXPECT_EQ(cl.bus().debug_load(l2_out, 4, false), 42u);
}

TEST(OutlineTarget, BarriersSeparatePhases) {
  // The staged input must be visible to ALL cores in the compute section
  // (the post-DMA barrier guarantees it): every core copies the input word
  // into its own slot.
  const Addr l2_in = cluster::kL2Base + 0x100;
  const Addr l2_out = cluster::kL2Base + 0x200;
  const Addr tcdm = cluster::kTcdmBase;
  const isa::Program prog = outline_target(
      core::or10n_config().features, {{l2_in, tcdm, 4}},
      {{tcdm + 4, l2_out, 16}},
      [&](Builder& bld, const OutlineRegs& regs) {
        bld.li(5, tcdm);
        bld.emit(Opcode::kLw, 6, 5, 0, 0);
        bld.emit(Opcode::kSlli, 7, regs.core_id, 0, 2);
        bld.emit(Opcode::kAdd, 5, 5, 7);
        bld.emit(Opcode::kSw, 6, 5, 0, 4);
      });
  cluster::Cluster cl;
  cl.load_program(prog);
  cl.bus().debug_store(l2_in, 4, 0xABCD);
  cl.run();
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(cl.bus().debug_load(l2_out + 4 * i, 4, false), 0xABCDu);
  }
}

TEST(OutlineFlat, RunsWithoutClusterServices) {
  const isa::Program prog = outline_flat(
      core::cortex_m4_config().features,
      [&](Builder& bld, const OutlineRegs& regs) {
        bld.emit(Opcode::kAddi, 5, regs.num_cores, 0, 100);
      });
  mem::Sram sram(0, 1024);
  mem::SimpleBus bus(&sram, 1);
  core::Core cpu(0, 1, core::cortex_m4_config(), &bus);
  cpu.reset(&prog);
  cpu.run_to_halt();
  EXPECT_EQ(cpu.reg(5), 101u);  // num_cores = 1 on the flat target
}

}  // namespace
}  // namespace ulp::runtime
