// Offload-timing properties, parameterised over every Table I kernel:
// invariants of the analytic model that Figure 5's plots rely on.
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"

namespace ulp::runtime {
namespace {

class OffloadProperties
    : public ::testing::TestWithParam<kernels::KernelInfo> {
 protected:
  OffloadOutcome run_one(double mcu_freq) {
    const auto cfg = core::or10n_config();
    const auto kc = GetParam().factory(cfg.features, 4,
                                       kernels::Target::kCluster, 3);
    link::SpiLinkConfig lcfg;
    lcfg.lanes = 4;
    OffloadSession session(host::stm32l476(), mcu_freq,
                           link::SpiLink(lcfg));
    const power::OperatingPoint op{0.5,
                                   session.power_model().fmax_hz(0.5)};
    auto outcome = session.run(kc.offload_request(), op);
    EXPECT_EQ(outcome.output, kc.expected) << GetParam().name;
    return outcome;
  }
};

TEST_P(OffloadProperties, EfficiencyMonotoneAndBounded) {
  const auto o = run_one(mhz(16));
  double prev = 0;
  for (u32 n = 1; n <= 1024; n *= 2) {
    for (const bool db : {false, true}) {
      const double eff = o.timing.efficiency(n, db);
      EXPECT_GT(eff, 0.0);
      EXPECT_LE(eff, 1.0 + 1e-12) << GetParam().name;
    }
    const double eff_seq = o.timing.efficiency(n, false);
    EXPECT_GE(eff_seq, prev - 1e-12);
    prev = eff_seq;
  }
}

TEST_P(OffloadProperties, DoubleBufferingNeverHurts) {
  const auto o = run_one(mhz(16));
  for (u32 n = 1; n <= 256; n *= 4) {
    EXPECT_LE(o.timing.total_s(n, true), o.timing.total_s(n, false) + 1e-12)
        << GetParam().name << " n=" << n;
  }
}

TEST_P(OffloadProperties, TotalTimeLowerBounds) {
  const auto o = run_one(mhz(16));
  for (u32 n : {1u, 7u, 64u}) {
    for (const bool db : {false, true}) {
      const double total = o.timing.total_s(n, db);
      // No schedule can beat pure compute or pure transfer time (the wire
      // is half-duplex; even the pipelined schedule serialises transfers).
      EXPECT_GE(total, n * o.timing.t_compute_s - 1e-12);
      EXPECT_GE(total, o.timing.t_binary_s +
                           n * (o.timing.t_in_s + o.timing.t_out_s) - 1e-9);
    }
  }
}

TEST_P(OffloadProperties, HigherMcuFrequencyNeverSlowsTheLink) {
  const auto slow = run_one(mhz(4));
  const auto fast = run_one(mhz(26));
  EXPECT_LE(fast.timing.t_in_s, slow.timing.t_in_s);
  EXPECT_LE(fast.timing.t_binary_s, slow.timing.t_binary_s);
  // Compute time is MCU-frequency independent.
  EXPECT_NEAR(fast.timing.t_compute_s, slow.timing.t_compute_s, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, OffloadProperties,
    ::testing::ValuesIn(kernels::all_kernels()),
    [](const ::testing::TestParamInfo<kernels::KernelInfo>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ulp::runtime
