#include "host/mcu.hpp"

#include <gtest/gtest.h>

namespace ulp::host {
namespace {

TEST(McuCatalog, HasAllFigure3Mcus) {
  const auto& cat = mcu_catalog();
  ASSERT_EQ(cat.size(), 7u);
  std::vector<std::string> names;
  for (const auto& m : cat) names.push_back(m.name);
  for (const char* expected :
       {"STM32F407", "STM32F446", "LPC1800", "EFM32", "MSP430",
        "Ambiq Apollo", "STM32L476"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(McuCatalog, HostIsTheL476) {
  EXPECT_EQ(stm32l476().name, "STM32L476");
  EXPECT_EQ(stm32l476().spi_lanes, 4u);  // exposes QSPI
  EXPECT_DOUBLE_EQ(stm32l476().max_freq_hz(), mhz(80));
}

TEST(McuCatalog, ApolloIsTheMostEfficient) {
  // The paper singles out the Ambiq Apollo as the only MCU near
  // 10 GOPS/W; it must have by far the lowest current density.
  double apollo = 0;
  double best_other = 1e9;
  for (const auto& m : mcu_catalog()) {
    if (m.name == "Ambiq Apollo") {
      apollo = m.active_ua_per_mhz;
    } else {
      best_other = std::min(best_other, m.active_ua_per_mhz);
    }
  }
  EXPECT_LT(apollo, best_other / 2);
}

TEST(McuSpec, ActivePowerMatchesDatasheetIdiom) {
  const McuSpec& l476 = stm32l476();
  // 100 µA/MHz * 32 MHz * 3.0 V = 9.6 mW.
  EXPECT_NEAR(l476.active_power_w(mhz(32)), mw(9.6), mw(0.01));
}

TEST(McuSpec, BaselinePowerAt32MHzFitsThePaperEnvelope) {
  // The paper's Figure 5a baseline: L476 at 32 MHz consumes roughly the
  // whole 10 mW envelope (no room for the accelerator).
  const double p = stm32l476().active_power_w(mhz(32));
  EXPECT_GT(p, mw(8));
  EXPECT_LT(p, mw(10.5));
}

TEST(McuSpec, CoreConfigsMatchKind) {
  for (const auto& m : mcu_catalog()) {
    const auto cfg = m.core_config();
    switch (m.core_kind) {
      case McuSpec::CoreKind::kCortexM4:
        EXPECT_EQ(cfg.name, "cortex-m4") << m.name;
        break;
      case McuSpec::CoreKind::kCortexM3:
        EXPECT_EQ(cfg.name, "cortex-m3") << m.name;
        break;
      case McuSpec::CoreKind::kSimple16Bit:
        EXPECT_EQ(cfg.name, "baseline-risc") << m.name;
        break;
    }
  }
}

TEST(McuSpec, OperatingPointsAreSortedAscending) {
  for (const auto& m : mcu_catalog()) {
    for (size_t i = 1; i < m.op_freqs_hz.size(); ++i) {
      EXPECT_LT(m.op_freqs_hz[i - 1], m.op_freqs_hz[i]) << m.name;
    }
  }
}

}  // namespace
}  // namespace ulp::host
