#include "host/peripherals.hpp"

#include <gtest/gtest.h>

namespace ulp::host {
namespace {

struct SpiMasterFixture {
  mem::Sram local{0, 4096};
  std::map<Addr, u8> remote;
  link::SpiWire wire{4, [this](Addr a, u8 b) { remote[a] = b; },
                     [this](Addr a) { return remote.count(a) ? remote[a] : 0; }};
  SpiMasterPeripheral spi{&wire, &local};

  void drain() {
    int guard = 0;
    while (wire.busy()) {
      wire.step();
      ASSERT_LT(++guard, 1 << 20);
    }
  }
};

TEST(SpiMaster, MmioProgrammingSequenceTx) {
  SpiMasterFixture f;
  f.local.store(0x40, 4, 0xCAFE1234);
  f.spi.write32(0x00, 0x5000);  // remote
  f.spi.write32(0x04, 0x40);    // local
  f.spi.write32(0x08, 4);       // len
  EXPECT_EQ(f.spi.read32(0x10), 0u);  // idle before CMD
  f.spi.write32(0x0C, 1);             // TX
  EXPECT_EQ(f.spi.read32(0x10), 1u);  // busy
  f.drain();
  EXPECT_EQ(f.spi.read32(0x10), 0u);
  EXPECT_EQ(f.remote[0x5000], 0x34);
  EXPECT_EQ(f.remote[0x5003], 0xCA);
}

TEST(SpiMaster, MmioProgrammingSequenceRx) {
  SpiMasterFixture f;
  f.remote[0x6000] = 0xAB;
  f.remote[0x6001] = 0xCD;
  f.spi.write32(0x00, 0x6000);
  f.spi.write32(0x04, 0x80);
  f.spi.write32(0x08, 2);
  f.spi.write32(0x0C, 2);  // RX
  f.drain();
  EXPECT_EQ(f.local.load(0x80, 2, false), 0xCDABu);
}

TEST(SpiMaster, RegistersReadBack) {
  SpiMasterFixture f;
  f.spi.write32(0x00, 123);
  f.spi.write32(0x04, 456);
  f.spi.write32(0x08, 789);
  EXPECT_EQ(f.spi.read32(0x00), 123u);
  EXPECT_EQ(f.spi.read32(0x04), 456u);
  EXPECT_EQ(f.spi.read32(0x08), 789u);
}

TEST(SpiMaster, RejectsBadCommandAndOffset) {
  SpiMasterFixture f;
  EXPECT_THROW(f.spi.write32(0x0C, 3), SimError);
  EXPECT_THROW((void)f.spi.read32(0x40), SimError);
  EXPECT_THROW(f.spi.write32(0x40, 0), SimError);
}

TEST(Gpio, FetchEnableFiresOnRisingEdgeOnly) {
  int boots = 0;
  u32 booted_len = 0;
  GpioPeripheral gpio([] { return false; }, [&](u32 len) {
    ++boots;
    booted_len = len;
  });
  gpio.write32(0x08, 2048);  // IMG_LEN
  gpio.write32(0x00, 0);     // still low
  EXPECT_EQ(boots, 0);
  gpio.write32(0x00, 1);  // rising edge
  EXPECT_EQ(boots, 1);
  EXPECT_EQ(booted_len, 2048u);
  gpio.write32(0x00, 1);  // level, no edge
  EXPECT_EQ(boots, 1);
  gpio.write32(0x00, 0);
  gpio.write32(0x00, 1);  // second edge
  EXPECT_EQ(boots, 2);
}

TEST(Gpio, EocLevelIsLive) {
  bool eoc = false;
  GpioPeripheral gpio([&] { return eoc; }, [](u32) {});
  EXPECT_EQ(gpio.read32(0x04), 0u);
  eoc = true;
  EXPECT_EQ(gpio.read32(0x04), 1u);
}

TEST(HostWakeUnit, WakesOnlyOnEventKindAndEocLevel) {
  bool eoc = false;
  HostWakeUnit wu([&] { return eoc; });
  EXPECT_FALSE(wu.check_wake(0, core::WakeKind::kEvent));
  eoc = true;
  EXPECT_TRUE(wu.check_wake(0, core::WakeKind::kEvent));
  EXPECT_FALSE(wu.check_wake(0, core::WakeKind::kBarrier));
  EXPECT_THROW((void)wu.barrier_arrive(0), SimError);
}

}  // namespace
}  // namespace ulp::host
