// Integration tests of the full offload path: serialised binary over the
// link into the SoC, boot, DMA staging, 4-core execution, results back.
#include <gtest/gtest.h>

#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"
#include "soc/pulp_soc.hpp"

namespace ulp {
namespace {

using kernels::Target;

runtime::OffloadSession make_session(double mcu_freq_hz = mhz(26)) {
  link::SpiLinkConfig lcfg;
  lcfg.lanes = host::stm32l476().spi_lanes;
  lcfg.max_freq_hz = host::stm32l476().spi_max_hz;
  return runtime::OffloadSession(host::stm32l476(), mcu_freq_hz,
                                 link::SpiLink(lcfg));
}

TEST(PulpSoc, BootImageRoundTrip) {
  const auto cfg = core::or10n_config();
  const auto kc =
      kernels::make_matmul_char(cfg.features, 4, Target::kCluster, 3);
  soc::PulpSoc soc;
  soc.boot_image(isa::serialize(kc.program));
  soc.qspi_write(kc.input_addr, kc.input);
  soc.run_to_eoc();
  EXPECT_TRUE(soc.eoc_gpio());
  std::vector<u8> out(kc.output_bytes);
  soc.qspi_read(kc.output_addr, out);
  EXPECT_EQ(out, kc.expected);
}

TEST(PulpSoc, RejectsCorruptImage) {
  soc::PulpSoc soc;
  std::vector<u8> garbage(64, 0xAB);
  EXPECT_THROW(soc.boot_image(garbage), SimError);
}

TEST(PulpSoc, BootFromL2Staging) {
  // The full-system boot path: image bytes arrive in L2 first (as the QSPI
  // slave would deposit them), then the fetch-enable boot consumes them.
  const auto cfg = core::or10n_config();
  const auto kc =
      kernels::make_svm_poly(cfg.features, 4, Target::kCluster, 11);
  const std::vector<u8> image = isa::serialize(kc.program);
  soc::PulpSoc soc;
  soc.qspi_write(memmap::kL2Base, image);
  soc.boot_from_l2(memmap::kL2Base, static_cast<u32>(image.size()));
  soc.qspi_write(kc.input_addr, kc.input);
  soc.run_to_eoc();
  std::vector<u8> out(kc.output_bytes);
  soc.qspi_read(kc.output_addr, out);
  EXPECT_EQ(out, kc.expected);
}

TEST(PulpSoc, QspiWriteOutsideL2IsCaught) {
  soc::PulpSoc soc;
  const std::vector<u8> bytes(16, 0);
  EXPECT_THROW(soc.qspi_write(0x0, bytes), SimError);
}

TEST(Offload, FullPathBitExact) {
  const auto cfg = core::or10n_config();
  auto session = make_session();
  const power::OperatingPoint op{0.7, session.power_model().fmax_hz(0.7)};
  for (const auto& info : kernels::all_kernels()) {
    const auto kc = info.factory(cfg.features, 4, Target::kCluster, 5);
    const auto outcome = session.run(kc.offload_request(), op);
    EXPECT_EQ(outcome.output, kc.expected) << info.name;
  }
}

TEST(Offload, TimingComposition) {
  const auto cfg = core::or10n_config();
  auto session = make_session();
  const power::OperatingPoint op{0.7, session.power_model().fmax_hz(0.7)};
  const auto kc =
      kernels::make_matmul_char(cfg.features, 4, Target::kCluster, 3);
  const auto o = session.run(kc.offload_request(), op);

  EXPECT_GT(o.timing.t_binary_s, 0);
  EXPECT_GT(o.timing.t_in_s, 0);
  EXPECT_GT(o.timing.t_out_s, 0);
  EXPECT_GT(o.timing.t_compute_s, 0);
  // Sequential composition identity.
  EXPECT_NEAR(o.timing.total_s(8, false),
              o.timing.t_binary_s +
                  8 * (o.timing.t_in_s + o.timing.t_compute_s +
                       o.timing.t_out_s),
              1e-12);
  // Double buffering can only help, and is bounded by the slower stage.
  EXPECT_LE(o.timing.total_s(8, true), o.timing.total_s(8, false) + 1e-12);
}

TEST(Offload, EfficiencyImprovesWithIterations) {
  // Figure 5b's scenario: the accelerator runs at the envelope-constrained
  // operating point (0.5 V class), the MCU at one of its faster settings —
  // there the link is fast enough and efficiency converges toward 1.
  const auto cfg = core::or10n_config();
  auto session = make_session();
  const power::OperatingPoint op{0.5, session.power_model().fmax_hz(0.5)};
  const auto kc =
      kernels::make_matmul_char(cfg.features, 4, Target::kCluster, 3);
  const auto o = session.run(kc.offload_request(), op);
  double prev = 0;
  for (u32 n : {1u, 2u, 4u, 16u, 64u, 256u}) {
    const double eff = o.timing.efficiency(n, false);
    EXPECT_GT(eff, prev);
    EXPECT_LE(eff, 1.0);
    prev = eff;
  }
  // The paper reaches full efficiency "after as few as 32 iterations" at
  // the fast MCU settings; double buffering gets essentially all the way.
  EXPECT_GT(o.timing.efficiency(32, false), 0.6);
  EXPECT_GT(o.timing.efficiency(256, true), 0.9);
}

TEST(Offload, LowMcuFrequencyStarvesTheLink) {
  // Figure 5b's plateau: at a very low MCU clock the SPI bound dominates
  // and even infinite iterations cannot reach good efficiency.
  const auto cfg = core::or10n_config();
  const auto kc =
      kernels::make_matmul_char(cfg.features, 4, Target::kCluster, 3);
  auto slow = make_session(mhz(2));
  auto fast = make_session(mhz(26));
  const power::OperatingPoint op{0.7, power::PulpPowerModel{}.fmax_hz(0.7)};
  const auto so = slow.run(kc.offload_request(), op);
  const auto fo = fast.run(kc.offload_request(), op);
  EXPECT_LT(so.timing.efficiency(256, false),
            fo.timing.efficiency(256, false));
}

TEST(Offload, EnergyBreakdownPositiveAndConsistent) {
  const auto cfg = core::or10n_config();
  auto session = make_session();
  const power::OperatingPoint op{0.6, session.power_model().fmax_hz(0.6)};
  const auto kc =
      kernels::make_matmul_char(cfg.features, 4, Target::kCluster, 3);
  const auto o = session.run(kc.offload_request(), op);
  const auto e1 = session.energy(o, op, 1, false);
  const auto e8 = session.energy(o, op, 8, false);
  EXPECT_GT(e1.mcu_j, 0);
  EXPECT_GT(e1.pulp_j, 0);
  EXPECT_GT(e1.link_j, 0);
  EXPECT_GT(e8.total_j(), e1.total_j());
  // More iterations amortise the binary: energy per iteration decreases.
  EXPECT_LT(e8.total_j() / 8, e1.total_j());
}

TEST(Offload, SteadyPowerWithinReason) {
  const auto cfg = core::or10n_config();
  auto session = make_session(mhz(8));
  const power::OperatingPoint op{0.6, session.power_model().fmax_hz(0.6)};
  const auto kc =
      kernels::make_matmul_char(cfg.features, 4, Target::kCluster, 3);
  const auto o = session.run(kc.offload_request(), op);
  const double p = session.steady_power_w(o, op, true);
  EXPECT_GT(p, mw(0.5));
  EXPECT_LT(p, mw(20));
}

}  // namespace
}  // namespace ulp
