file(REMOVE_RECURSE
  "libulp_link.a"
)
