# Empty compiler generated dependencies file for ulp_link.
# This may be replaced when dependencies are built.
