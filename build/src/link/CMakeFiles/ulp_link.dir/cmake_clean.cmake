file(REMOVE_RECURSE
  "CMakeFiles/ulp_link.dir/spi_wire.cpp.o"
  "CMakeFiles/ulp_link.dir/spi_wire.cpp.o.d"
  "libulp_link.a"
  "libulp_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
