file(REMOVE_RECURSE
  "CMakeFiles/ulp_codegen.dir/assembler.cpp.o"
  "CMakeFiles/ulp_codegen.dir/assembler.cpp.o.d"
  "CMakeFiles/ulp_codegen.dir/builder.cpp.o"
  "CMakeFiles/ulp_codegen.dir/builder.cpp.o.d"
  "libulp_codegen.a"
  "libulp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
