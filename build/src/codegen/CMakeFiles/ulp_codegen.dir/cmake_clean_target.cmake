file(REMOVE_RECURSE
  "libulp_codegen.a"
)
