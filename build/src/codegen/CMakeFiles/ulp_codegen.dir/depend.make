# Empty dependencies file for ulp_codegen.
# This may be replaced when dependencies are built.
