# Empty dependencies file for ulp_power.
# This may be replaced when dependencies are built.
