file(REMOVE_RECURSE
  "CMakeFiles/ulp_power.dir/pulp_power.cpp.o"
  "CMakeFiles/ulp_power.dir/pulp_power.cpp.o.d"
  "libulp_power.a"
  "libulp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
