
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/pulp_power.cpp" "src/power/CMakeFiles/ulp_power.dir/pulp_power.cpp.o" "gcc" "src/power/CMakeFiles/ulp_power.dir/pulp_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ulp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/ulp_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ulp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
