file(REMOVE_RECURSE
  "libulp_power.a"
)
