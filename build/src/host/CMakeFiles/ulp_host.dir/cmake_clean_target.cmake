file(REMOVE_RECURSE
  "libulp_host.a"
)
