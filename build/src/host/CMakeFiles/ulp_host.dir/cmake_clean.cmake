file(REMOVE_RECURSE
  "CMakeFiles/ulp_host.dir/mcu.cpp.o"
  "CMakeFiles/ulp_host.dir/mcu.cpp.o.d"
  "CMakeFiles/ulp_host.dir/peripherals.cpp.o"
  "CMakeFiles/ulp_host.dir/peripherals.cpp.o.d"
  "libulp_host.a"
  "libulp_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
