# Empty dependencies file for ulp_host.
# This may be replaced when dependencies are built.
