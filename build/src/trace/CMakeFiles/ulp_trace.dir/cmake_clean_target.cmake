file(REMOVE_RECURSE
  "libulp_trace.a"
)
