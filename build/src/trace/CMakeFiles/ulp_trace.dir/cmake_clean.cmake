file(REMOVE_RECURSE
  "CMakeFiles/ulp_trace.dir/cluster_tracer.cpp.o"
  "CMakeFiles/ulp_trace.dir/cluster_tracer.cpp.o.d"
  "CMakeFiles/ulp_trace.dir/report.cpp.o"
  "CMakeFiles/ulp_trace.dir/report.cpp.o.d"
  "CMakeFiles/ulp_trace.dir/vcd.cpp.o"
  "CMakeFiles/ulp_trace.dir/vcd.cpp.o.d"
  "libulp_trace.a"
  "libulp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
