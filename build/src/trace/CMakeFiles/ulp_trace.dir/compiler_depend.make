# Empty compiler generated dependencies file for ulp_trace.
# This may be replaced when dependencies are built.
