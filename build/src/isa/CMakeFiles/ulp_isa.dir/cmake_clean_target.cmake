file(REMOVE_RECURSE
  "libulp_isa.a"
)
