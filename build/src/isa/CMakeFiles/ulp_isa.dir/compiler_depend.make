# Empty compiler generated dependencies file for ulp_isa.
# This may be replaced when dependencies are built.
