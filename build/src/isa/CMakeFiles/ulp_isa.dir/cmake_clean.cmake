file(REMOVE_RECURSE
  "CMakeFiles/ulp_isa.dir/disasm.cpp.o"
  "CMakeFiles/ulp_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/ulp_isa.dir/encoding.cpp.o"
  "CMakeFiles/ulp_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/ulp_isa.dir/isa.cpp.o"
  "CMakeFiles/ulp_isa.dir/isa.cpp.o.d"
  "CMakeFiles/ulp_isa.dir/program.cpp.o"
  "CMakeFiles/ulp_isa.dir/program.cpp.o.d"
  "libulp_isa.a"
  "libulp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
