# Empty dependencies file for ulp_system.
# This may be replaced when dependencies are built.
