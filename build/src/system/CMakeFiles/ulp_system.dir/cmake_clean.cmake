file(REMOVE_RECURSE
  "CMakeFiles/ulp_system.dir/hetero_system.cpp.o"
  "CMakeFiles/ulp_system.dir/hetero_system.cpp.o.d"
  "CMakeFiles/ulp_system.dir/host_driver.cpp.o"
  "CMakeFiles/ulp_system.dir/host_driver.cpp.o.d"
  "libulp_system.a"
  "libulp_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
