file(REMOVE_RECURSE
  "libulp_system.a"
)
