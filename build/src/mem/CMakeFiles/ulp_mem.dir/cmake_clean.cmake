file(REMOVE_RECURSE
  "CMakeFiles/ulp_mem.dir/bus.cpp.o"
  "CMakeFiles/ulp_mem.dir/bus.cpp.o.d"
  "CMakeFiles/ulp_mem.dir/mem.cpp.o"
  "CMakeFiles/ulp_mem.dir/mem.cpp.o.d"
  "CMakeFiles/ulp_mem.dir/tcdm.cpp.o"
  "CMakeFiles/ulp_mem.dir/tcdm.cpp.o.d"
  "libulp_mem.a"
  "libulp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
