# Empty dependencies file for ulp_mem.
# This may be replaced when dependencies are built.
