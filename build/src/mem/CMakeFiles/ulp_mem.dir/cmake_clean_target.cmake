file(REMOVE_RECURSE
  "libulp_mem.a"
)
