# Empty dependencies file for ulp_soc.
# This may be replaced when dependencies are built.
