file(REMOVE_RECURSE
  "libulp_soc.a"
)
