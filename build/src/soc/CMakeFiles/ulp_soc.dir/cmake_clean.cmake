file(REMOVE_RECURSE
  "CMakeFiles/ulp_soc.dir/pulp_soc.cpp.o"
  "CMakeFiles/ulp_soc.dir/pulp_soc.cpp.o.d"
  "libulp_soc.a"
  "libulp_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
