file(REMOVE_RECURSE
  "libulp_dma.a"
)
