# Empty dependencies file for ulp_dma.
# This may be replaced when dependencies are built.
