file(REMOVE_RECURSE
  "CMakeFiles/ulp_dma.dir/dma.cpp.o"
  "CMakeFiles/ulp_dma.dir/dma.cpp.o.d"
  "libulp_dma.a"
  "libulp_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
