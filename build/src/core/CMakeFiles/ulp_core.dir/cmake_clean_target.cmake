file(REMOVE_RECURSE
  "libulp_core.a"
)
