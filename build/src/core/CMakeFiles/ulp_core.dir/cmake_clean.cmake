file(REMOVE_RECURSE
  "CMakeFiles/ulp_core.dir/core.cpp.o"
  "CMakeFiles/ulp_core.dir/core.cpp.o.d"
  "CMakeFiles/ulp_core.dir/features.cpp.o"
  "CMakeFiles/ulp_core.dir/features.cpp.o.d"
  "libulp_core.a"
  "libulp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
