# Empty dependencies file for ulp_core.
# This may be replaced when dependencies are built.
