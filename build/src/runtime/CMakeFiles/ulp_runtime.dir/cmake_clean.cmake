file(REMOVE_RECURSE
  "CMakeFiles/ulp_runtime.dir/offload.cpp.o"
  "CMakeFiles/ulp_runtime.dir/offload.cpp.o.d"
  "CMakeFiles/ulp_runtime.dir/omp.cpp.o"
  "CMakeFiles/ulp_runtime.dir/omp.cpp.o.d"
  "CMakeFiles/ulp_runtime.dir/outliner.cpp.o"
  "CMakeFiles/ulp_runtime.dir/outliner.cpp.o.d"
  "libulp_runtime.a"
  "libulp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
