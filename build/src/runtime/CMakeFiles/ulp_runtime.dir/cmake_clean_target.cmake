file(REMOVE_RECURSE
  "libulp_runtime.a"
)
