# Empty dependencies file for ulp_runtime.
# This may be replaced when dependencies are built.
