file(REMOVE_RECURSE
  "libulp_cluster.a"
)
