# Empty compiler generated dependencies file for ulp_cluster.
# This may be replaced when dependencies are built.
