file(REMOVE_RECURSE
  "CMakeFiles/ulp_cluster.dir/cluster.cpp.o"
  "CMakeFiles/ulp_cluster.dir/cluster.cpp.o.d"
  "libulp_cluster.a"
  "libulp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
