# Empty dependencies file for ulp_kernels.
# This may be replaced when dependencies are built.
