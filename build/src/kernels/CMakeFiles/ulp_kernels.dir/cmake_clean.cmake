file(REMOVE_RECURSE
  "CMakeFiles/ulp_kernels.dir/cnn.cpp.o"
  "CMakeFiles/ulp_kernels.dir/cnn.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/extensions.cpp.o"
  "CMakeFiles/ulp_kernels.dir/extensions.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/hog.cpp.o"
  "CMakeFiles/ulp_kernels.dir/hog.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/kernel.cpp.o"
  "CMakeFiles/ulp_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/matmul.cpp.o"
  "CMakeFiles/ulp_kernels.dir/matmul.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/matmul_tiled.cpp.o"
  "CMakeFiles/ulp_kernels.dir/matmul_tiled.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/runner.cpp.o"
  "CMakeFiles/ulp_kernels.dir/runner.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/strassen.cpp.o"
  "CMakeFiles/ulp_kernels.dir/strassen.cpp.o.d"
  "CMakeFiles/ulp_kernels.dir/svm.cpp.o"
  "CMakeFiles/ulp_kernels.dir/svm.cpp.o.d"
  "libulp_kernels.a"
  "libulp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
