
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cnn.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/cnn.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/cnn.cpp.o.d"
  "/root/repo/src/kernels/extensions.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/extensions.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/extensions.cpp.o.d"
  "/root/repo/src/kernels/hog.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/hog.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/hog.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/matmul.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/matmul.cpp.o.d"
  "/root/repo/src/kernels/matmul_tiled.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/matmul_tiled.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/matmul_tiled.cpp.o.d"
  "/root/repo/src/kernels/runner.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/runner.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/runner.cpp.o.d"
  "/root/repo/src/kernels/strassen.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/strassen.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/strassen.cpp.o.d"
  "/root/repo/src/kernels/svm.cpp" "src/kernels/CMakeFiles/ulp_kernels.dir/svm.cpp.o" "gcc" "src/kernels/CMakeFiles/ulp_kernels.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ulp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ulp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/ulp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/ulp_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ulp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/ulp_link.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ulp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/ulp_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ulp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
