file(REMOVE_RECURSE
  "libulp_kernels.a"
)
