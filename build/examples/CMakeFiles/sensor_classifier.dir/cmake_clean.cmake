file(REMOVE_RECURSE
  "CMakeFiles/sensor_classifier.dir/sensor_classifier.cpp.o"
  "CMakeFiles/sensor_classifier.dir/sensor_classifier.cpp.o.d"
  "sensor_classifier"
  "sensor_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
