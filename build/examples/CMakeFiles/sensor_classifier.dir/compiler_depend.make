# Empty compiler generated dependencies file for sensor_classifier.
# This may be replaced when dependencies are built.
