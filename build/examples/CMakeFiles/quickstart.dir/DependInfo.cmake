
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/ulp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ulp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ulp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ulp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/ulp_link.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/ulp_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/ulp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ulp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/ulp_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ulp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ulp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
