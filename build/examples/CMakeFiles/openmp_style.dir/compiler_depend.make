# Empty compiler generated dependencies file for openmp_style.
# This may be replaced when dependencies are built.
