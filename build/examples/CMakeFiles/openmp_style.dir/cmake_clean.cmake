file(REMOVE_RECURSE
  "CMakeFiles/openmp_style.dir/openmp_style.cpp.o"
  "CMakeFiles/openmp_style.dir/openmp_style.cpp.o.d"
  "openmp_style"
  "openmp_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmp_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
