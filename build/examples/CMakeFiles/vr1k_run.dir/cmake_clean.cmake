file(REMOVE_RECURSE
  "CMakeFiles/vr1k_run.dir/vr1k_run.cpp.o"
  "CMakeFiles/vr1k_run.dir/vr1k_run.cpp.o.d"
  "vr1k_run"
  "vr1k_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr1k_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
