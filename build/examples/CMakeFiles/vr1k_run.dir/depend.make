# Empty dependencies file for vr1k_run.
# This may be replaced when dependencies are built.
