# Empty compiler generated dependencies file for smart_camera.
# This may be replaced when dependencies are built.
