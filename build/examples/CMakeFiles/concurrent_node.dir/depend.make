# Empty dependencies file for concurrent_node.
# This may be replaced when dependencies are built.
