file(REMOVE_RECURSE
  "CMakeFiles/concurrent_node.dir/concurrent_node.cpp.o"
  "CMakeFiles/concurrent_node.dir/concurrent_node.cpp.o.d"
  "concurrent_node"
  "concurrent_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
