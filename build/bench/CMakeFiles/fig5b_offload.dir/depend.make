# Empty dependencies file for fig5b_offload.
# This may be replaced when dependencies are built.
