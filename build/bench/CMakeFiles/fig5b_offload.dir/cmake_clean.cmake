file(REMOVE_RECURSE
  "CMakeFiles/fig5b_offload.dir/fig5b_offload.cpp.o"
  "CMakeFiles/fig5b_offload.dir/fig5b_offload.cpp.o.d"
  "fig5b_offload"
  "fig5b_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
