file(REMOVE_RECURSE
  "CMakeFiles/fig5a_envelope.dir/fig5a_envelope.cpp.o"
  "CMakeFiles/fig5a_envelope.dir/fig5a_envelope.cpp.o.d"
  "fig5a_envelope"
  "fig5a_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
