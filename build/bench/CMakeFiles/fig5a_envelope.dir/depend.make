# Empty dependencies file for fig5a_envelope.
# This may be replaced when dependencies are built.
