# Empty dependencies file for ablation_tcdm.
# This may be replaced when dependencies are built.
