file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcdm.dir/ablation_tcdm.cpp.o"
  "CMakeFiles/ablation_tcdm.dir/ablation_tcdm.cpp.o.d"
  "ablation_tcdm"
  "ablation_tcdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
