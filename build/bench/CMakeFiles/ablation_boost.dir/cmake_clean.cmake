file(REMOVE_RECURSE
  "CMakeFiles/ablation_boost.dir/ablation_boost.cpp.o"
  "CMakeFiles/ablation_boost.dir/ablation_boost.cpp.o.d"
  "ablation_boost"
  "ablation_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
