# Empty dependencies file for ablation_boost.
# This may be replaced when dependencies are built.
