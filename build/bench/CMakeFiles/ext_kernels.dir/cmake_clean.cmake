file(REMOVE_RECURSE
  "CMakeFiles/ext_kernels.dir/ext_kernels.cpp.o"
  "CMakeFiles/ext_kernels.dir/ext_kernels.cpp.o.d"
  "ext_kernels"
  "ext_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
