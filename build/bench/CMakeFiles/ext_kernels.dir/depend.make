# Empty dependencies file for ext_kernels.
# This may be replaced when dependencies are built.
