file(REMOVE_RECURSE
  "CMakeFiles/ablation_link.dir/ablation_link.cpp.o"
  "CMakeFiles/ablation_link.dir/ablation_link.cpp.o.d"
  "ablation_link"
  "ablation_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
