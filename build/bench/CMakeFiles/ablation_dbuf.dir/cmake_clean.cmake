file(REMOVE_RECURSE
  "CMakeFiles/ablation_dbuf.dir/ablation_dbuf.cpp.o"
  "CMakeFiles/ablation_dbuf.dir/ablation_dbuf.cpp.o.d"
  "ablation_dbuf"
  "ablation_dbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
