# Empty compiler generated dependencies file for ablation_dbuf.
# This may be replaced when dependencies are built.
